"""Campaign execution: bounded dispatch, retries, checkpointed resume.

The runner expands the grid once, then drives every not-yet-completed
cell either against service endpoints (streaming sessions over
:class:`~repro.service.client.ServiceClient`, endpoints assigned
round-robin by grid index, per-cell retry with exponential backoff and
fail-over on connection loss) or through the in-process fallback
(:func:`~repro.sim.runner.simulate`) when no endpoint is given.  The
service layer's bit-identity contract means both paths record the same
metrics — the harvested CSV does not depend on where a cell ran.

Progress is a JSON state file written with the same atomic
tmp+fsync+rename machinery simulator checkpoints use
(:func:`~repro.service.checkpoint.atomic_write_bytes`), updated after
*every* completed cell: a campaign killed at any instant — ``kill -9``
included — resumes from the last completed cell, never re-runs a
finished one, and re-verifies each stored cell's config fingerprint
against the freshly expanded grid before trusting it.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SimConfig
from repro.errors import CampaignError, ServiceError
from repro.service.checkpoint import atomic_write_bytes
from repro.utils.provenance import runtime_provenance

from repro.campaign.grid import CampaignCell, cell_trace, expand_grid
from repro.campaign.spec import CampaignSpec

PathLike = Union[str, Path]

#: First field of every campaign state file; rejects arbitrary JSON.
STATE_MAGIC = "planaria-campaign"
#: Bump on any incompatible change to the state layout.
STATE_VERSION = 1

#: ``(host, port)`` pair.
Endpoint = Tuple[str, int]


def parse_endpoint(text: str) -> Endpoint:
    """``"host:port"`` → ``(host, port)``; raises CampaignError on junk."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise CampaignError(
            f"bad endpoint {text!r}; expected host:port")
    try:
        return host, int(port)
    except ValueError:
        raise CampaignError(
            f"bad endpoint port in {text!r}; expected host:port") from None


def state_path(spec: CampaignSpec, directory: PathLike) -> Path:
    """Where a campaign's progress state lives: ``<dir>/<name>.campaign.json``."""
    return Path(directory) / f"{spec.name}.campaign.json"


@dataclass
class CampaignState:
    """On-disk campaign progress: which cells are done, with what."""

    name: str
    spec_fingerprint: str
    total_cells: int
    cells: Dict[str, dict] = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "magic": STATE_MAGIC,
            "version": STATE_VERSION,
            "name": self.name,
            "spec_fingerprint": self.spec_fingerprint,
            "total_cells": self.total_cells,
            "provenance": self.provenance,
            "cells": self.cells,
        }

    @property
    def complete(self) -> bool:
        return len(self.cells) >= self.total_cells


def save_state(path: PathLike, state: CampaignState) -> Path:
    """Atomically persist the progress state (crash-safe at any point)."""
    payload = json.dumps(state.to_dict(), indent=2, sort_keys=False)
    return atomic_write_bytes(path, (payload + "\n").encode("utf-8"))


def load_state(path: PathLike) -> CampaignState:
    """Read and validate a campaign progress file.

    Raises:
        CampaignError: missing file, not a campaign state, or an
            incompatible version.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CampaignError(f"no campaign state at {path}") from None
    except (OSError, ValueError) as exc:
        raise CampaignError(
            f"{path}: not a readable campaign state: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != STATE_MAGIC:
        raise CampaignError(f"{path}: not a planaria campaign state")
    if payload.get("version") != STATE_VERSION:
        raise CampaignError(
            f"{path}: campaign state version {payload.get('version')}, "
            f"this build reads version {STATE_VERSION}")
    return CampaignState(
        name=str(payload.get("name", "")),
        spec_fingerprint=str(payload.get("spec_fingerprint", "")),
        total_cells=int(payload.get("total_cells", 0)),
        cells=dict(payload.get("cells", {})),
        provenance=dict(payload.get("provenance", {})),
    )


class CampaignRunner:
    """Drives one campaign: expand → dispatch → checkpoint → summarize.

    Args:
        spec: the validated campaign spec.
        directory: where progress state (and, by default, harvested
            results) live.
        endpoints: ``host:port`` strings (or pairs); empty runs every
            cell through the in-process fallback.
        config: pre-loaded base :class:`SimConfig` (defaults to the
            spec's ``sim_config`` resolution).
    """

    def __init__(self, spec: CampaignSpec, directory: PathLike,
                 endpoints: Sequence[Union[str, Endpoint]] = (),
                 config: Optional[SimConfig] = None) -> None:
        self.spec = spec
        self.directory = Path(directory)
        self.endpoints: List[Endpoint] = [
            parse_endpoint(entry) if isinstance(entry, str) else
            (entry[0], int(entry[1]))
            for entry in endpoints
        ]
        self.config = config or spec.load_base_config()
        self.cells: List[CampaignCell] = expand_grid(spec, self.config)
        #: Cell ids executed by *this* runner (not skipped-from-state) —
        #: the resume property tests key off this.
        self.executed: List[str] = []
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # State handling
    # ------------------------------------------------------------------
    @property
    def state_file(self) -> Path:
        return state_path(self.spec, self.directory)

    def _fresh_state(self) -> CampaignState:
        return CampaignState(
            name=self.spec.name,
            spec_fingerprint=self.spec.fingerprint,
            total_cells=len(self.cells),
            provenance=runtime_provenance(),
        )

    def _load_verified_state(self) -> CampaignState:
        """Load existing progress and re-verify it against this grid."""
        state = load_state(self.state_file)
        if state.spec_fingerprint != self.spec.fingerprint:
            raise CampaignError(
                f"campaign state {self.state_file} was recorded for spec "
                f"fingerprint {state.spec_fingerprint}, but the current "
                f"spec has fingerprint {self.spec.fingerprint}; refusing "
                f"to resume a different grid")
        by_id = {cell.cell_id: cell for cell in self.cells}
        for cell_id, entry in state.cells.items():
            cell = by_id.get(cell_id)
            if cell is None:
                raise CampaignError(
                    f"campaign state has completed cell {cell_id!r} that "
                    f"the spec's grid does not contain")
            stored = entry.get("fingerprint")
            if stored != cell.fingerprint:
                raise CampaignError(
                    f"completed cell {cell_id!r} was recorded under "
                    f"config fingerprint {stored}, but the grid now "
                    f"expands to {cell.fingerprint}; refusing to mix "
                    f"results across configurations")
        return state

    def status(self) -> dict:
        """Progress summary for ``repro campaign status`` (read-only)."""
        if self.state_file.exists():
            state = self._load_verified_state()
        else:
            state = self._fresh_state()
        done = [cell.cell_id for cell in self.cells
                if cell.cell_id in state.cells]
        pending = [cell.cell_id for cell in self.cells
                   if cell.cell_id not in state.cells]
        return {
            "name": self.spec.name,
            "state_file": str(self.state_file),
            "total_cells": len(self.cells),
            "completed_cells": len(done),
            "pending_cells": pending,
            "complete": not pending,
            "endpoints": [f"{host}:{port}" for host, port in self.endpoints],
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(self, resume: bool = False,
            stop_after_cells: Optional[int] = None,
            progress: Optional[Callable[[str], None]] = None) -> dict:
        """Execute every pending cell; returns a run summary.

        ``resume=False`` requires a clean slate (an existing state file
        is an error: delete it or resume).  ``resume=True`` loads and
        re-verifies existing progress, then runs only the missing cells.
        ``stop_after_cells`` stops after that many *newly executed*
        cells (serially), leaving valid resumable state behind — the
        deterministic stand-in for a mid-grid kill that tests and
        incremental drivers use; a real ``kill -9`` leaves the same
        on-disk picture.
        """
        log = progress or (lambda line: None)
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.state_file.exists():
            if not resume:
                raise CampaignError(
                    f"campaign state already exists at {self.state_file}; "
                    f"resume it ('repro campaign resume') or delete the "
                    f"file to start over")
            state = self._load_verified_state()
        else:
            if resume:
                raise CampaignError(
                    f"nothing to resume: no campaign state at "
                    f"{self.state_file}")
            state = self._fresh_state()
            save_state(self.state_file, state)

        pending = [(index, cell) for index, cell in enumerate(self.cells)
                   if cell.cell_id not in state.cells]
        skipped = len(self.cells) - len(pending)
        if skipped:
            log(f"resuming: {skipped}/{len(self.cells)} cells already "
                f"completed, {len(pending)} to run")
        if stop_after_cells is not None:
            pending = pending[:max(0, int(stop_after_cells))]

        def record(cell: CampaignCell, entry: dict) -> None:
            with self._state_lock:
                state.cells[cell.cell_id] = entry
                save_state(self.state_file, state)
                self.executed.append(cell.cell_id)
                done = len(state.cells)
            log(f"[{done}/{len(self.cells)}] {cell.cell_id}: "
                f"amat={entry['metrics']['amat']:.1f} "
                f"hit_rate={entry['metrics']['hit_rate']:.3f} "
                f"({entry['runtime']['endpoint']})")

        workers = min(self.spec.dispatch.max_inflight_cells,
                      max(1, len(pending)))
        if workers <= 1 or stop_after_cells is not None:
            for index, cell in pending:
                record(cell, self._run_cell(index, cell))
        else:
            with ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-campaign") as pool:
                futures = {
                    pool.submit(self._run_cell, index, cell): cell
                    for index, cell in pending
                }
                for future in as_completed(futures):
                    record(futures[future], future.result())

        return {
            "name": self.spec.name,
            "total_cells": len(self.cells),
            "executed_cells": len(self.executed),
            "skipped_cells": skipped,
            "complete": state.complete,
            "state_file": str(self.state_file),
        }

    # ------------------------------------------------------------------
    # Cell execution
    # ------------------------------------------------------------------
    def _run_cell(self, index: int, cell: CampaignCell) -> dict:
        """Run one cell (with retry/fail-over) and build its state entry."""
        dispatch = self.spec.dispatch
        started = time.perf_counter()
        attempts = 0
        last_error: Optional[BaseException] = None
        if not self.endpoints:
            metrics, epochs, lineage = self._run_cell_local(cell)
            endpoint_label = "local"
            attempts = 1
        else:
            metrics = None
            epochs = None
            lineage = None
            endpoint_label = ""
            for attempt in range(dispatch.max_retries + 1):
                attempts = attempt + 1
                # Round-robin by grid index; fail-over walks the list.
                host, port = self.endpoints[
                    (index + attempt) % len(self.endpoints)]
                try:
                    metrics, epochs, lineage = self._run_cell_service(
                        cell, host, port)
                    endpoint_label = f"{host}:{port}"
                    break
                except (ServiceError, OSError) as exc:
                    last_error = exc
                    if attempt >= dispatch.max_retries:
                        raise CampaignError(
                            f"cell {cell.cell_id!r} failed after "
                            f"{attempts} attempt(s); last endpoint "
                            f"{host}:{port}: {exc}") from exc
                    time.sleep(
                        dispatch.retry_backoff_seconds * (2 ** attempt))
            assert metrics is not None, last_error
        entry = {
            "cell_id": cell.cell_id,
            "workload": cell.workload.label,
            "prefetcher": cell.prefetcher,
            "variant": cell.variant,
            "seed": cell.seed,
            "length": cell.length,
            "fingerprint": cell.fingerprint,
            "metrics": metrics,
            "provenance": {
                "seed": cell.seed,
                "config_fingerprint": cell.fingerprint,
            },
            # Volatile facts (timing, attempts, where it ran) live apart
            # from the harvested identity/metrics/provenance, so resumed
            # and uninterrupted runs export byte-identical results.
            "runtime": {
                "endpoint": endpoint_label,
                "attempts": attempts,
                "elapsed_seconds": round(time.perf_counter() - started, 3),
            },
        }
        if epochs is not None:
            entry["epochs"] = epochs
        if lineage is not None:
            entry["lineage"] = lineage
        return entry

    def _run_cell_local(self, cell: CampaignCell):
        """In-process fallback: offline simulate (+ optional timeline /
        lineage)."""
        buffer = cell_trace(cell)
        if not cell.epoch_records and not self.spec.lineage:
            from repro.sim.runner import simulate

            result = simulate(buffer, cell.prefetcher,
                              workload_name=cell.workload.label,
                              config=cell.config)
            return asdict(result.metrics), None, None
        from repro.prefetch.registry import make_prefetcher
        from repro.sim.engine import SystemSimulator
        from repro.sim.runner import collect_metrics

        simulator = SystemSimulator(
            cell.config,
            lambda layout, channel: make_prefetcher(cell.prefetcher,
                                                    layout, channel))
        obs = None
        if cell.epoch_records:
            from repro.obs import attach_observability

            obs = attach_observability(simulator,
                                       epoch_records=cell.epoch_records)
        lineage = None
        if self.spec.lineage:
            from repro.obs import attach_lineage

            lineage = attach_lineage(simulator)
        simulator.run(buffer)
        metrics = collect_metrics(simulator, cell.workload.label,
                                  cell.prefetcher)
        epochs = None
        if obs is not None:
            epochs = [epoch.to_dict()
                      for epoch in obs.merged_timeline(include_partial=True)]
        summary = lineage.summary() if lineage is not None else None
        return asdict(metrics), epochs, summary

    def _run_cell_service(self, cell: CampaignCell, host: str, port: int):
        """One streaming session against an endpoint (one attempt)."""
        from repro.service.client import ServiceClient
        from repro.sim.engine import channel_warmup_counts

        buffer = cell_trace(cell)
        warmup = channel_warmup_counts(buffer, cell.config)
        name = cell.session_name
        with ServiceClient.connect(host, port) as client:
            try:
                # A previous attempt may have left the session half-fed;
                # drop it so this attempt replays from a clean engine.
                client.close_session(name)
            except (ServiceError, KeyError):
                pass
            client.open(name, cell.prefetcher,
                        workload=cell.workload.label, config=cell.config,
                        warmup_records=warmup,
                        epoch_records=cell.epoch_records or None,
                        lineage=self.spec.lineage)
            client.feed_trace(name, buffer,
                              chunk_records=self.spec.dispatch.chunk_records)
            epochs = None
            if cell.epoch_records:
                records, _ = client.timeline(name, include_partial=True)
                epochs = [epoch.to_dict() for epoch in records]
            summary = (client.lineage(name) if self.spec.lineage else None)
            snapshot = client.close_session(name)
        return asdict(snapshot.metrics), epochs, summary
