"""Learnable-neighbour fraction — the paper's Figure 5 experiment.

Method (Section 4.1): every page gets a 64-bit access bitmap over the
trace.  Two pages are *learnable neighbours* when (a) their page-number
difference is at most the distance threshold and (b) their bitmaps differ
in fewer than ``max_bitmap_difference`` bits (paper: 4).  Figure 5 reports,
per application and per distance threshold, the fraction of pages that
have at least one learnable neighbour — on average 26.95 % at distance 4
and 39.26 % at distance 64.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.geometry import AddressLayout, DEFAULT_LAYOUT
from repro.trace.record import TraceRecord
from repro.utils.bitops import hamming_distance


@dataclass
class NeighborResult:
    """Learnable-neighbour fractions for one trace."""

    fractions: Dict[int, float] = field(default_factory=dict)
    num_pages: int = 0

    def fraction_at(self, distance: int) -> float:
        try:
            return self.fractions[distance]
        except KeyError:
            known = sorted(self.fractions)
            raise KeyError(f"distance {distance} not computed; have {known}") from None


def page_bitmaps(records: Iterable[TraceRecord],
                 layout: AddressLayout = DEFAULT_LAYOUT,
                 min_blocks: int = 2) -> Dict[int, int]:
    """Per-page 64-bit access bitmaps, skipping nearly-untouched pages."""
    bitmaps: Dict[int, int] = {}
    for record in records:
        page = layout.page_number(record.address)
        bitmaps[page] = bitmaps.get(page, 0) | (1 << layout.block_in_page(record.address))
    if min_blocks > 1:
        bitmaps = {
            page: bitmap for page, bitmap in bitmaps.items()
            if bin(bitmap).count("1") >= min_blocks
        }
    return bitmaps


def learnable_neighbor_fraction(
    records: Iterable[TraceRecord],
    distance_thresholds: Sequence[int] = (4, 8, 16, 32, 64),
    max_bitmap_difference: int = 4,
    layout: AddressLayout = DEFAULT_LAYOUT,
    min_blocks: int = 2,
) -> NeighborResult:
    """Fraction of pages with ≥1 learnable neighbour per distance threshold.

    The scan sorts pages by number and, for each page, examines only pages
    within the largest threshold — O(pages × neighbourhood) rather than
    O(pages²).
    """
    if not distance_thresholds:
        raise ValueError("need at least one distance threshold")
    bitmaps = page_bitmaps(records, layout, min_blocks=min_blocks)
    pages: List[Tuple[int, int]] = sorted(bitmaps.items())
    thresholds = sorted(set(distance_thresholds))
    max_distance = thresholds[-1]
    counts = {threshold: 0 for threshold in thresholds}
    for index, (page, bitmap) in enumerate(pages):
        # Nearest qualifying neighbour distance, if any.
        best_distance = None
        for other_index in range(index + 1, len(pages)):
            other_page, other_bitmap = pages[other_index]
            gap = other_page - page
            if gap > max_distance:
                break
            if hamming_distance(bitmap, other_bitmap) < max_bitmap_difference:
                best_distance = gap if best_distance is None else min(best_distance, gap)
                if best_distance <= thresholds[0]:
                    break
        for other_index in range(index - 1, -1, -1):
            other_page, other_bitmap = pages[other_index]
            gap = page - other_page
            if gap > max_distance or (best_distance is not None
                                      and gap >= best_distance):
                break
            if hamming_distance(bitmap, other_bitmap) < max_bitmap_difference:
                best_distance = gap
                if best_distance <= thresholds[0]:
                    break
        if best_distance is None:
            continue
        for threshold in thresholds:
            if best_distance <= threshold:
                counts[threshold] += 1
    total = len(pages)
    fractions = {
        threshold: (counts[threshold] / total if total else 0.0)
        for threshold in thresholds
    }
    return NeighborResult(fractions=fractions, num_pages=total)
