"""Trace analyses reproducing the paper's motivation experiments.

* :mod:`repro.analysis.footprint` — Figure 2: the footprint snapshot of a
  memory page over time (spatial clusters, long reuse distance,
  non-deterministic order).
* :mod:`repro.analysis.overlap` — Figures 3-4: window-to-window overlap
  rate of per-page footprints (>80 % average, justifying PN-only
  signatures).
* :mod:`repro.analysis.neighbors` — Figure 5: fraction of pages with a
  learnable neighbour at various distance thresholds (justifying TLP).
"""

from repro.analysis.footprint import FootprintEvent, page_footprint_events, footprint_summary
from repro.analysis.overlap import OverlapResult, window_overlap_rate
from repro.analysis.neighbors import NeighborResult, learnable_neighbor_fraction

__all__ = [
    "FootprintEvent",
    "page_footprint_events",
    "footprint_summary",
    "OverlapResult",
    "window_overlap_rate",
    "NeighborResult",
    "learnable_neighbor_fraction",
]
