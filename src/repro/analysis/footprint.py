"""Footprint snapshot of a single page — the paper's Figure 2.

Figure 2 plots, for one memory page, the block number of every access
against its arrival cycle.  Three characteristics drive SLP's design:

1. several blocks are touched within a brief interval (spatial clusters),
2. the snapshot recurs after a long gap (limited temporal locality),
3. the within-snapshot order varies between recurrences.

:func:`page_footprint_events` extracts the raw (time, block) series;
:func:`footprint_summary` quantifies the three observations; and
:func:`render_ascii` draws the classic scatter as text for terminals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.geometry import AddressLayout, DEFAULT_LAYOUT
from repro.trace.record import TraceRecord


@dataclass(frozen=True)
class FootprintEvent:
    """One access to the observed page."""

    time: int
    block: int


@dataclass(frozen=True)
class FootprintSummary:
    """Quantified Figure-2 observations for one page."""

    num_accesses: int
    distinct_blocks: int
    num_bursts: int
    mean_burst_span: float
    mean_gap_between_bursts: float
    order_similarity: float

    @property
    def reuse_over_burst_ratio(self) -> float:
        """How much longer the inter-snapshot gap is than the snapshot
        itself — 'reuse distance of the snapshots is usually long'."""
        if self.mean_burst_span <= 0:
            return 0.0
        return self.mean_gap_between_bursts / self.mean_burst_span


def page_footprint_events(
    records: Iterable[TraceRecord],
    page_number: int,
    layout: AddressLayout = DEFAULT_LAYOUT,
) -> List[FootprintEvent]:
    """All accesses to ``page_number``, in arrival order."""
    return [
        FootprintEvent(time=record.arrival_time,
                       block=layout.block_in_page(record.address))
        for record in records
        if layout.page_number(record.address) == page_number
    ]


def split_bursts(events: Sequence[FootprintEvent],
                 gap_threshold: int = 5_000) -> List[List[FootprintEvent]]:
    """Group events into bursts separated by quiet gaps (snapshot episodes)."""
    bursts: List[List[FootprintEvent]] = []
    current: List[FootprintEvent] = []
    for event in events:
        if current and event.time - current[-1].time > gap_threshold:
            bursts.append(current)
            current = []
        current.append(event)
    if current:
        bursts.append(current)
    return bursts


def _order_similarity(bursts: Sequence[Sequence[FootprintEvent]]) -> float:
    """Mean pairwise similarity of block *orderings* across bursts.

    1.0 would mean every burst touches its blocks in the same sequence;
    Figure 2's observation ③ expects a low value even when the block *sets*
    are nearly identical.
    """
    orders = []
    for burst in bursts:
        seen = []
        for event in burst:
            if event.block not in seen:
                seen.append(event.block)
        orders.append(seen)
    if len(orders) < 2:
        return 1.0
    total = 0.0
    pairs = 0
    for first, second in zip(orders, orders[1:]):
        common = [block for block in first if block in second]
        if len(common) < 2:
            continue
        first_rank = {block: rank for rank, block in enumerate(first)}
        second_rank = {block: rank for rank, block in enumerate(second)}
        agreements = 0
        comparisons = 0
        for i in range(len(common)):
            for j in range(i + 1, len(common)):
                a, b = common[i], common[j]
                same_order = ((first_rank[a] < first_rank[b])
                              == (second_rank[a] < second_rank[b]))
                agreements += 1 if same_order else 0
                comparisons += 1
        if comparisons:
            total += agreements / comparisons
            pairs += 1
    return total / pairs if pairs else 1.0


def footprint_summary(events: Sequence[FootprintEvent],
                      gap_threshold: int = 5_000) -> FootprintSummary:
    """Quantify Figure 2's three observations for one page's events."""
    if not events:
        return FootprintSummary(0, 0, 0, 0.0, 0.0, 1.0)
    bursts = split_bursts(events, gap_threshold)
    spans = [burst[-1].time - burst[0].time for burst in bursts]
    gaps = [
        later[0].time - earlier[-1].time
        for earlier, later in zip(bursts, bursts[1:])
    ]
    return FootprintSummary(
        num_accesses=len(events),
        distinct_blocks=len({event.block for event in events}),
        num_bursts=len(bursts),
        mean_burst_span=sum(spans) / len(spans),
        mean_gap_between_bursts=sum(gaps) / len(gaps) if gaps else 0.0,
        order_similarity=_order_similarity(bursts),
    )


def render_ascii(events: Sequence[FootprintEvent], width: int = 72,
                 blocks_per_page: int = 64) -> str:
    """Render the Figure-2 scatter (time × block number) as ASCII art."""
    if not events:
        return "(no accesses)"
    t_min = events[0].time
    t_max = max(event.time for event in events)
    span = max(1, t_max - t_min)
    grid = [[" "] * width for _ in range(blocks_per_page)]
    for event in events:
        column = min(width - 1, (event.time - t_min) * (width - 1) // span)
        grid[event.block][column] = "*"
    lines = []
    for block in range(blocks_per_page - 1, -1, -1):
        row = "".join(grid[block])
        if row.strip():
            lines.append(f"{block:3d} |{row}")
    lines.append("    +" + "-" * width)
    lines.append(f"     time {t_min} .. {t_max} (cycles)")
    return "\n".join(lines)
