"""Window overlap rate — the paper's Figure 3 methodology, Figure 4 data.

Method (Section 3.2): for each page, the window size is the number of
distinct blocks the page accesses; the page's access stream is then chopped
into consecutive windows of that many accesses, and each window's
distinct-block set is compared with the previous window's.  The overlap
rate is ``|current ∩ previous| / |current|``; the reported figure is the
average over all windows of all (sufficiently active) pages.

An overlap rate above ~80 % means the footprint snapshot barely changes
across program phases, validating the page number as a complete pattern
signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.geometry import AddressLayout, DEFAULT_LAYOUT
from repro.trace.record import TraceRecord


@dataclass
class OverlapResult:
    """Aggregate overlap-rate statistics for one trace."""

    mean_overlap: float
    num_windows: int
    num_pages: int
    per_page_overlap: Dict[int, float] = field(default_factory=dict)


def _page_streams(records: Iterable[TraceRecord],
                  layout: AddressLayout) -> Dict[int, List[int]]:
    streams: Dict[int, List[int]] = {}
    for record in records:
        page = layout.page_number(record.address)
        streams.setdefault(page, []).append(layout.block_in_page(record.address))
    return streams


def window_overlap_rate(
    records: Iterable[TraceRecord],
    layout: AddressLayout = DEFAULT_LAYOUT,
    min_accesses: int = 8,
    min_windows: int = 2,
) -> OverlapResult:
    """Compute the Figure-4 overlap rate over a trace.

    Args:
        min_accesses: pages with fewer accesses are skipped (single-shot
            noise pages have no second window to compare).
        min_windows: pages contributing fewer windows than this are skipped.
    """
    streams = _page_streams(records, layout)
    total_overlap = 0.0
    total_windows = 0
    per_page: Dict[int, float] = {}
    for page, blocks in streams.items():
        if len(blocks) < min_accesses:
            continue
        window_size = len(set(blocks))
        if window_size == 0:
            continue
        windows = [
            set(blocks[start:start + window_size])
            for start in range(0, len(blocks), window_size)
        ]
        # Drop a trailing fragment window: its small size inflates overlap.
        if len(windows) > 1 and len(blocks) % window_size:
            windows.pop()
        if len(windows) < min_windows:
            continue
        page_overlap = 0.0
        page_windows = 0
        for previous, current in zip(windows, windows[1:]):
            if not current:
                continue
            page_overlap += len(previous & current) / len(current)
            page_windows += 1
        if page_windows == 0:
            continue
        per_page[page] = page_overlap / page_windows
        total_overlap += page_overlap
        total_windows += page_windows
    mean = total_overlap / total_windows if total_windows else 0.0
    return OverlapResult(
        mean_overlap=mean,
        num_windows=total_windows,
        num_pages=len(per_page),
        per_page_overlap=per_page,
    )
