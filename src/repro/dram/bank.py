"""Per-bank row-buffer and timing state."""

from __future__ import annotations

from typing import Optional

from repro.config import DRAMTiming


class Bank:
    """One DRAM bank: open row, and earliest-next-command bookkeeping.

    The greedy scheduler asks a bank *when* a column access to a given row
    could start, given the bank's current state; the bank reports the CAS
    issue time and updates itself.

    ``auto_precharge`` implements the closed-page policy: every column
    access closes its row (read-with-auto-precharge), trading row-hit
    opportunity for cheaper conflicts — useful under highly irregular
    traffic.
    """

    __slots__ = ("timing", "auto_precharge", "open_row", "activate_time",
                 "next_cas_time", "ready_time", "row_hits", "row_misses",
                 "row_conflicts", "activates")

    def __init__(self, timing: DRAMTiming, auto_precharge: bool = False) -> None:
        self.timing = timing
        self.auto_precharge = auto_precharge
        self.open_row: Optional[int] = None
        self.activate_time = -(10 ** 9)   # far in the past
        self.next_cas_time = 0
        self.ready_time = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.activates = 0

    def state_dict(self) -> dict:
        """Snapshot the mutable bank state (checkpoint support).

        ``timing`` and ``auto_precharge`` are configuration, owned by the
        channel that rebuilds the bank.
        """
        return {
            "open_row": self.open_row,
            "activate_time": self.activate_time,
            "next_cas_time": self.next_cas_time,
            "ready_time": self.ready_time,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "activates": self.activates,
        }

    def load_state(self, state: dict) -> None:
        self.open_row = state["open_row"]
        self.activate_time = state["activate_time"]
        self.next_cas_time = state["next_cas_time"]
        self.ready_time = state["ready_time"]
        self.row_hits = state["row_hits"]
        self.row_misses = state["row_misses"]
        self.row_conflicts = state["row_conflicts"]
        self.activates = state["activates"]

    def block_until(self, time: int) -> None:
        """Refresh (or power-down exit) makes the bank unusable until ``time``."""
        self.ready_time = max(self.ready_time, time)
        self.open_row = None

    def cas_time(self, row: int, earliest: int, act_allowed_at: int) -> (int, str, int):
        """Compute when a CAS to ``row`` can issue.

        Args:
            earliest: request arrival / controller readiness.
            act_allowed_at: earliest activate permitted by rank-level
                tRRD/tFAW constraints.

        Returns:
            (cas_issue_time, outcome, activate_time_or_-1) where outcome is
            one of ``"hit"``, ``"miss"`` (bank was precharged) or
            ``"conflict"`` (wrong row open).  ``activate_time`` is -1 when
            no activate was needed.
        """
        t = self.timing
        start = max(earliest, self.ready_time)
        if self.open_row == row:
            cas = max(start, self.next_cas_time)
            self.row_hits += 1
            self._after_cas(cas)
            return cas, "hit", -1
        if self.open_row is None:
            act = max(start, act_allowed_at)
            cas = act + t.tRCD
            self.open_row = row
            self.activate_time = act
            self.activates += 1
            self.row_misses += 1
            self._after_cas(cas)
            return cas, "miss", act
        # Row conflict: precharge (respecting tRAS) then activate.
        precharge = max(start, self.activate_time + t.tRAS)
        act = max(precharge + t.tRP, act_allowed_at)
        cas = act + t.tRCD
        self.open_row = row
        self.activate_time = act
        self.activates += 1
        self.row_conflicts += 1
        self._after_cas(cas)
        return cas, "conflict", act

    def _after_cas(self, cas: int) -> None:
        self.next_cas_time = cas + self.timing.tCCD
        self.ready_time = max(self.ready_time, cas)
        if self.auto_precharge:
            # Closed-page: the row precharges tRTP after the CAS; the next
            # access to this bank activates from a precharged state.
            self.open_row = None
            self.ready_time = max(self.ready_time,
                                  cas + self.timing.tRTP + self.timing.tRP)
