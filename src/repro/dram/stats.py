"""Per-channel DRAM statistics, the power model's raw input."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.utils.statistics import RunningStats


@dataclass
class DRAMStats:
    """Event counters and latency aggregates for one channel."""

    demand_reads: int = 0
    demand_writes: int = 0
    prefetch_reads: int = 0
    writebacks: int = 0
    activates: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    refreshes: int = 0
    data_bus_cycles: int = 0
    elapsed_cycles: int = 0
    demand_read_latency: RunningStats = field(default_factory=RunningStats)
    prefetch_latency: RunningStats = field(default_factory=RunningStats)
    prefetch_reads_by_source: Dict[str, int] = field(default_factory=dict)

    @property
    def total_reads(self) -> int:
        return self.demand_reads + self.prefetch_reads

    @property
    def total_requests(self) -> int:
        return self.total_reads + self.demand_writes + self.writebacks

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    @property
    def bus_utilization(self) -> float:
        if self.elapsed_cycles == 0:
            return 0.0
        return min(1.0, self.data_bus_cycles / self.elapsed_cycles)

    def state_dict(self) -> dict:
        """Snapshot every counter and latency aggregate (checkpoints)."""
        return {
            "demand_reads": self.demand_reads,
            "demand_writes": self.demand_writes,
            "prefetch_reads": self.prefetch_reads,
            "writebacks": self.writebacks,
            "activates": self.activates,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "refreshes": self.refreshes,
            "data_bus_cycles": self.data_bus_cycles,
            "elapsed_cycles": self.elapsed_cycles,
            "demand_read_latency": self.demand_read_latency.state_dict(),
            "prefetch_latency": self.prefetch_latency.state_dict(),
            "prefetch_reads_by_source": dict(self.prefetch_reads_by_source),
        }

    def load_state(self, state: dict) -> None:
        self.demand_reads = state["demand_reads"]
        self.demand_writes = state["demand_writes"]
        self.prefetch_reads = state["prefetch_reads"]
        self.writebacks = state["writebacks"]
        self.activates = state["activates"]
        self.row_hits = state["row_hits"]
        self.row_misses = state["row_misses"]
        self.row_conflicts = state["row_conflicts"]
        self.refreshes = state["refreshes"]
        self.data_bus_cycles = state["data_bus_cycles"]
        self.elapsed_cycles = state["elapsed_cycles"]
        self.demand_read_latency.load_state(state["demand_read_latency"])
        self.prefetch_latency.load_state(state["prefetch_latency"])
        self.prefetch_reads_by_source = dict(state["prefetch_reads_by_source"])

    def merge(self, other: "DRAMStats") -> None:
        """Fold another channel's counters into this one."""
        self.demand_reads += other.demand_reads
        self.demand_writes += other.demand_writes
        self.prefetch_reads += other.prefetch_reads
        self.writebacks += other.writebacks
        self.activates += other.activates
        self.row_hits += other.row_hits
        self.row_misses += other.row_misses
        self.row_conflicts += other.row_conflicts
        self.refreshes += other.refreshes
        self.data_bus_cycles += other.data_bus_cycles
        self.elapsed_cycles = max(self.elapsed_cycles, other.elapsed_cycles)
        self.demand_read_latency.merge(other.demand_read_latency)
        self.prefetch_latency.merge(other.prefetch_latency)
        for source, count in other.prefetch_reads_by_source.items():
            self.prefetch_reads_by_source[source] = (
                self.prefetch_reads_by_source.get(source, 0) + count
            )
