"""DRAM request descriptor."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RequestKind(enum.Enum):
    """What a DRAM transaction is for — drives stats and priority."""

    DEMAND_READ = "demand_read"
    DEMAND_WRITE = "demand_write"
    PREFETCH = "prefetch"
    WRITEBACK = "writeback"


@dataclass(frozen=True)
class MemRequest:
    """One block transfer to/from DRAM.

    Attributes:
        block_addr: block-granular address (byte address >> 6).
        arrival_time: cycle the request reaches the memory controller.
        kind: demand read/write, prefetch fill, or dirty write-back.
        source: issuing prefetcher name for prefetch requests.
    """

    block_addr: int
    arrival_time: int
    kind: RequestKind
    source: str = ""

    def __post_init__(self) -> None:
        if self.block_addr < 0:
            raise ValueError(f"negative block address {self.block_addr}")
        if self.arrival_time < 0:
            raise ValueError(f"negative arrival time {self.arrival_time}")

    @property
    def is_write(self) -> bool:
        return self.kind in (RequestKind.DEMAND_WRITE, RequestKind.WRITEBACK)
