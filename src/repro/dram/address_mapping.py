"""Block address → (rank, bank, row, column) decomposition.

Row-interleaved mapping: consecutive block addresses fill a row before
moving to the next bank, which preserves the row-buffer locality that makes
footprint-snapshot prefetching power-efficient (Figure 10's HI3/PM cases).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DRAMConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class DecodedAddress:
    rank: int
    bank: int
    row: int
    column: int


class AddressMapping:
    """Row:bank:column split of a channel-local block address."""

    def __init__(self, config: DRAMConfig, block_size: int = 64) -> None:
        if block_size <= 0 or config.row_size_bytes % block_size != 0:
            raise ConfigError(
                f"row size {config.row_size_bytes} not a multiple of block size {block_size}"
            )
        self.blocks_per_row = config.row_size_bytes // block_size
        self.num_banks = config.num_banks
        self.num_ranks = config.num_ranks
        self._column_mask = self.blocks_per_row - 1
        self._column_bits = self.blocks_per_row.bit_length() - 1
        self._bank_mask = config.num_banks - 1
        self._bank_bits = config.num_banks.bit_length() - 1
        self._rank_mask = config.num_ranks - 1
        rank_bits = max(0, config.num_ranks.bit_length() - 1)
        self._rank_bits = rank_bits

    def decode(self, block_addr: int) -> DecodedAddress:
        """Split a block address into rank/bank/row/column fields."""
        column = block_addr & self._column_mask
        remainder = block_addr >> self._column_bits
        bank = remainder & self._bank_mask
        remainder >>= self._bank_bits
        rank = remainder & self._rank_mask if self._rank_bits else 0
        row = remainder >> self._rank_bits
        return DecodedAddress(rank=rank, bank=bank, row=row, column=column)
