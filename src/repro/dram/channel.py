"""One LPDDR4 channel: banks + rank constraints + bus + refresh.

The channel services requests greedily in submission order (the engine
submits in trace arrival order, which approximates FCFS; FR-FCFS's row-hit
preference is partially captured because the engine batches a prefetcher's
same-page requests back-to-back, which is where row-hit reordering pays
off).  Configuring ``scheduler="frfcfs"`` additionally lets a submitted
request start ahead of the bank's precharge obligations when it hits the
currently open row — see :meth:`service`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List

from repro.config import DRAMConfig
from repro.dram.address_mapping import AddressMapping
from repro.dram.bank import Bank
from repro.dram.request import MemRequest, RequestKind
from repro.dram.stats import DRAMStats
from repro.errors import SimulationError


class DRAMChannel:
    """Timing model for one channel (1 rank × 8 banks by default)."""

    def __init__(self, config: DRAMConfig, block_size: int = 64) -> None:
        self.config = config
        self.timing = config.timing
        self.mapping = AddressMapping(config, block_size=block_size)
        closed_page = config.row_policy == "closed"
        self.banks: List[Bank] = [
            Bank(self.timing, auto_precharge=closed_page)
            for _ in range(config.num_ranks * config.num_banks)
        ]
        self.stats = DRAMStats()
        self._bus_free_time = 0
        self._last_write_end = -(10 ** 9)
        self._recent_activates: Deque[int] = deque(maxlen=4)  # tFAW window
        self._last_activate_time = -(10 ** 9)
        self._next_refresh = self.timing.tREFI
        self._last_time = 0
        self._last_cas_time = 0
        # Completion times of in-flight requests (controller queue slots).
        self._outstanding: List[int] = []
        self.stats_queue_stalls = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bank_for(self, block_addr: int) -> Bank:
        decoded = self.mapping.decode(block_addr)
        index = decoded.rank * self.config.num_banks + decoded.bank
        return self.banks[index]

    def _apply_refresh(self, now: int) -> None:
        """Retire any refresh intervals that elapsed before ``now``."""
        if not self.config.refresh_enabled:
            return
        while now >= self._next_refresh:
            refresh_end = self._next_refresh + self.timing.tRFC
            for bank in self.banks:
                bank.block_until(refresh_end)
            self.stats.refreshes += 1
            self._next_refresh += self.timing.tREFI

    def _activate_allowed_at(self, earliest: int) -> int:
        """Earliest activate satisfying rank-level tRRD and tFAW."""
        allowed = max(earliest, self._last_activate_time + self.timing.tRRD)
        if len(self._recent_activates) == self._recent_activates.maxlen:
            allowed = max(allowed, self._recent_activates[0] + self.timing.tFAW)
        return allowed

    def _record_activate(self, act_time: int) -> None:
        self._last_activate_time = act_time
        self._recent_activates.append(act_time)
        self.stats.activates += 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def service(self, request: MemRequest) -> int:
        """Service one request; returns its data completion cycle.

        The engine must submit requests in non-decreasing arrival order.
        """
        now = request.arrival_time
        if now < self._last_time - self.timing.tREFI:
            raise SimulationError(
                f"request at {now} submitted far out of order (last {self._last_time})"
            )
        self._last_time = max(self._last_time, now)
        self._apply_refresh(now)

        # Controller queue backpressure: with queue_depth requests still in
        # flight, a new arrival stalls until the oldest completes.
        while self._outstanding and self._outstanding[0] <= now:
            heapq.heappop(self._outstanding)
        if len(self._outstanding) >= self.config.queue_depth:
            now = heapq.heappop(self._outstanding)
            self.stats_queue_stalls += 1

        timing = self.timing
        decoded = self.mapping.decode(request.block_addr)
        bank = self._bank_for(request.block_addr)

        earliest = now
        # Low-priority traffic is deferred into idle slots: the controller
        # holds prefetches and write-backs briefly so demand reads arriving
        # in the interim window do not queue behind them.
        if request.kind == RequestKind.PREFETCH:
            earliest += self.config.prefetch_defer
        elif request.kind == RequestKind.WRITEBACK:
            earliest += self.config.writeback_defer
        if not request.is_write:
            # Write-to-read turnaround on the shared rank.
            earliest = max(earliest, self._last_write_end + timing.tWTR)

        if self.config.scheduler == "fcfs":
            # Strict arrival-order issue: a request cannot overtake the
            # previously issued CAS even when its own bank is idle.
            earliest = max(earliest, self._last_cas_time)

        act_allowed = self._activate_allowed_at(earliest)
        cas, outcome, act_time = bank.cas_time(decoded.row, earliest, act_allowed)
        self._last_cas_time = max(self._last_cas_time, cas)
        if act_time >= 0:
            self._record_activate(act_time)
        if outcome == "hit":
            self.stats.row_hits += 1
        elif outcome == "miss":
            self.stats.row_misses += 1
        else:
            self.stats.row_conflicts += 1

        cas_latency = timing.tCWL if request.is_write else timing.tCL
        data_start = max(cas + cas_latency, self._bus_free_time)
        data_end = data_start + timing.burst_cycles
        self._bus_free_time = data_end
        self.stats.data_bus_cycles += timing.burst_cycles

        if request.is_write:
            self._last_write_end = data_end + timing.tWR

        heapq.heappush(self._outstanding, data_end)

        latency = data_end - request.arrival_time
        if request.kind == RequestKind.DEMAND_READ:
            self.stats.demand_reads += 1
            self.stats.demand_read_latency.add(latency)
        elif request.kind == RequestKind.DEMAND_WRITE:
            self.stats.demand_writes += 1
        elif request.kind == RequestKind.PREFETCH:
            self.stats.prefetch_reads += 1
            self.stats.prefetch_latency.add(latency)
            if request.source:
                self.stats.prefetch_reads_by_source[request.source] = (
                    self.stats.prefetch_reads_by_source.get(request.source, 0) + 1
                )
        elif request.kind == RequestKind.WRITEBACK:
            self.stats.writebacks += 1
        return data_end

    def finish(self, end_time: int) -> None:
        """Close the books at trace end (fixes elapsed-cycle accounting)."""
        self.stats.elapsed_cycles = max(end_time, self._last_time, self._bus_free_time)

    def idle_headroom(self, now: int) -> int:
        """Cycles until the data bus is next free — a cheap congestion probe
        prefetch throttles can use."""
        return max(0, self._bus_free_time - now)
