"""One LPDDR4 channel: banks + rank constraints + bus + refresh.

The channel services requests greedily in submission order (the engine
submits in trace arrival order, which approximates FCFS; FR-FCFS's row-hit
preference is partially captured because the engine batches a prefetcher's
same-page requests back-to-back, which is where row-hit reordering pays
off).  Configuring ``scheduler="frfcfs"`` additionally lets a submitted
request start ahead of the bank's precharge obligations when it hits the
currently open row — see :meth:`service`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.config import DRAMConfig
from repro.dram.address_mapping import AddressMapping
from repro.dram.bank import Bank
from repro.dram.request import MemRequest, RequestKind
from repro.dram.stats import DRAMStats
from repro.errors import SimulationError


class DRAMChannel:
    """Timing model for one channel (1 rank × 8 banks by default)."""

    def __init__(self, config: DRAMConfig, block_size: int = 64) -> None:
        self.config = config
        self.timing = config.timing
        self.mapping = AddressMapping(config, block_size=block_size)
        closed_page = config.row_policy == "closed"
        self.banks: List[Bank] = [
            Bank(self.timing, auto_precharge=closed_page)
            for _ in range(config.num_ranks * config.num_banks)
        ]
        self.stats = DRAMStats()
        self._bus_free_time = 0
        self._last_write_end = -(10 ** 9)
        self._recent_activates: Deque[int] = deque(maxlen=4)  # tFAW window
        self._last_activate_time = -(10 ** 9)
        self._next_refresh = self.timing.tREFI
        self._last_time = 0
        self._last_cas_time = 0
        # Completion times of in-flight requests (controller queue slots).
        # Ascending by construction: each new data_end starts at or after
        # the previous one's bus release, so a deque's popleft is the
        # oldest completion — no heap needed.
        self._outstanding: Deque[int] = deque()
        self.stats_queue_stalls = 0
        # Hoisted per-request constants — service() runs once per DRAM
        # transaction (tens of thousands per channel per run), so derived
        # properties and config indirections are resolved here once.
        mapping = self.mapping
        self._column_bits = mapping._column_bits
        self._bank_mask = mapping._bank_mask
        self._bank_bits = mapping._bank_bits
        self._rank_mask = mapping._rank_mask
        self._rank_bits = mapping._rank_bits
        self._num_banks = config.num_banks
        self._burst_cycles = self.timing.burst_cycles
        self._refresh_enabled = config.refresh_enabled
        self._queue_depth = config.queue_depth
        self._prefetch_defer = config.prefetch_defer
        self._writeback_defer = config.writeback_defer
        self._fcfs = config.scheduler == "fcfs"
        self._faw_window = self._recent_activates.maxlen
        timing = self.timing
        self._tREFI = timing.tREFI
        self._tWTR = timing.tWTR
        self._tRRD = timing.tRRD
        self._tFAW = timing.tFAW
        self._tCL = timing.tCL
        self._tCWL = timing.tCWL
        self._tWR = timing.tWR

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bank_for(self, block_addr: int) -> Bank:
        decoded = self.mapping.decode(block_addr)
        index = decoded.rank * self.config.num_banks + decoded.bank
        return self.banks[index]

    def _apply_refresh(self, now: int) -> None:
        """Retire any refresh intervals that elapsed before ``now``."""
        if not self.config.refresh_enabled:
            return
        while now >= self._next_refresh:
            refresh_end = self._next_refresh + self.timing.tRFC
            for bank in self.banks:
                bank.block_until(refresh_end)
            self.stats.refreshes += 1
            self._next_refresh += self.timing.tREFI

    def _activate_allowed_at(self, earliest: int) -> int:
        """Earliest activate satisfying rank-level tRRD and tFAW."""
        allowed = max(earliest, self._last_activate_time + self.timing.tRRD)
        if len(self._recent_activates) == self._recent_activates.maxlen:
            allowed = max(allowed, self._recent_activates[0] + self.timing.tFAW)
        return allowed

    def _record_activate(self, act_time: int) -> None:
        self._last_activate_time = act_time
        self._recent_activates.append(act_time)
        self.stats.activates += 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def service(self, request: MemRequest) -> int:
        """Service one request; returns its data completion cycle.

        The engine must submit requests in non-decreasing arrival order.
        """
        return self.service_scalar(request.block_addr, request.arrival_time,
                                   request.kind, request.source)

    def service_scalar(self, block_addr: int, arrival_time: int,
                       kind: RequestKind, source: str = "") -> int:
        """Allocation-free :meth:`service`: same model, scalar arguments.

        The engine's demand fast loop calls this once per cache miss /
        prefetch / write-back, so the request is passed as four scalars
        (no :class:`MemRequest` construction) and the address is decoded
        inline (no :class:`DecodedAddress` allocation).  Behaviour is
        bit-identical to ``service(MemRequest(...))``, which delegates
        here.  Arguments are trusted to be non-negative — callers that
        build a ``MemRequest`` get its validation; the engine generates
        addresses and times that are non-negative by construction.
        """
        now = arrival_time
        if now < self._last_time - self._tREFI:
            raise SimulationError(
                f"request at {now} submitted far out of order (last {self._last_time})"
            )
        if now > self._last_time:
            self._last_time = now
        if self._refresh_enabled and now >= self._next_refresh:
            self._apply_refresh(now)

        # Controller queue backpressure: with queue_depth requests still in
        # flight, a new arrival stalls until the oldest completes.
        outstanding = self._outstanding
        while outstanding and outstanding[0] <= now:
            outstanding.popleft()
        if len(outstanding) >= self._queue_depth:
            now = outstanding.popleft()
            self.stats_queue_stalls += 1

        # Inline address decode (see AddressMapping.decode).
        remainder = block_addr >> self._column_bits
        bank_index = remainder & self._bank_mask
        remainder >>= self._bank_bits
        if self._rank_bits:
            rank = remainder & self._rank_mask
            row = remainder >> self._rank_bits
        else:
            rank = 0
            row = remainder
        bank = self.banks[rank * self._num_banks + bank_index]

        is_write = (kind is RequestKind.DEMAND_WRITE
                    or kind is RequestKind.WRITEBACK)
        earliest = now
        # Low-priority traffic is deferred into idle slots: the controller
        # holds prefetches and write-backs briefly so demand reads arriving
        # in the interim window do not queue behind them.
        if kind is RequestKind.PREFETCH:
            earliest += self._prefetch_defer
        elif kind is RequestKind.WRITEBACK:
            earliest += self._writeback_defer
        if not is_write:
            # Write-to-read turnaround on the shared rank.
            turnaround = self._last_write_end + self._tWTR
            if turnaround > earliest:
                earliest = turnaround

        if self._fcfs and self._last_cas_time > earliest:
            # Strict arrival-order issue: a request cannot overtake the
            # previously issued CAS even when its own bank is idle.
            earliest = self._last_cas_time

        # Rank-level activate constraints (tRRD + tFAW window).
        act_allowed = self._last_activate_time + self._tRRD
        if act_allowed < earliest:
            act_allowed = earliest
        recent = self._recent_activates
        if len(recent) == self._faw_window:
            faw_bound = recent[0] + self._tFAW
            if faw_bound > act_allowed:
                act_allowed = faw_bound

        cas, outcome, act_time = bank.cas_time(row, earliest, act_allowed)
        if cas > self._last_cas_time:
            self._last_cas_time = cas
        stats = self.stats
        if act_time >= 0:
            self._last_activate_time = act_time
            recent.append(act_time)
            stats.activates += 1
        if outcome == "hit":
            stats.row_hits += 1
        elif outcome == "miss":
            stats.row_misses += 1
        else:
            stats.row_conflicts += 1

        data_start = cas + (self._tCWL if is_write else self._tCL)
        if data_start < self._bus_free_time:
            data_start = self._bus_free_time
        burst = self._burst_cycles
        data_end = data_start + burst
        self._bus_free_time = data_end
        stats.data_bus_cycles += burst

        if is_write:
            self._last_write_end = data_end + self._tWR

        outstanding.append(data_end)

        latency = data_end - arrival_time
        if kind is RequestKind.DEMAND_READ:
            stats.demand_reads += 1
            # Inlined RunningStats.add (same operations, same order — the
            # per-demand-read call overhead is measurable at trace scale).
            read_stats = stats.demand_read_latency
            count = read_stats.count + 1
            read_stats.count = count
            delta = latency - read_stats._mean
            mean = read_stats._mean + delta / count
            read_stats._mean = mean
            read_stats._m2 += delta * (latency - mean)
            if read_stats.min is None or latency < read_stats.min:
                read_stats.min = latency
            if read_stats.max is None or latency > read_stats.max:
                read_stats.max = latency
        elif kind is RequestKind.DEMAND_WRITE:
            stats.demand_writes += 1
        elif kind is RequestKind.PREFETCH:
            stats.prefetch_reads += 1
            stats.prefetch_latency.add(latency)
            if source:
                stats.prefetch_reads_by_source[source] = (
                    stats.prefetch_reads_by_source.get(source, 0) + 1
                )
        else:
            stats.writebacks += 1
        return data_end

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot all mutable channel state (checkpoint support).

        Config-derived constants (timing, masks, scheduler mode) are not
        stored; :meth:`load_state` targets a channel built from the same
        :class:`~repro.config.DRAMConfig`.
        """
        return {
            "banks": [bank.state_dict() for bank in self.banks],
            "stats": self.stats.state_dict(),
            "bus_free_time": self._bus_free_time,
            "last_write_end": self._last_write_end,
            "recent_activates": list(self._recent_activates),
            "last_activate_time": self._last_activate_time,
            "next_refresh": self._next_refresh,
            "last_time": self._last_time,
            "last_cas_time": self._last_cas_time,
            # Ascending completion times; snapshots as a plain list.
            "outstanding": list(self._outstanding),
            "queue_stalls": self.stats_queue_stalls,
        }

    def load_state(self, state: dict) -> None:
        banks = state["banks"]
        if len(banks) != len(self.banks):
            raise SimulationError(
                f"checkpoint bank count mismatch: expected {len(self.banks)}, "
                f"got {len(banks)}")
        for bank, saved in zip(self.banks, banks):
            bank.load_state(saved)
        self.stats.load_state(state["stats"])
        self._bus_free_time = state["bus_free_time"]
        self._last_write_end = state["last_write_end"]
        self._recent_activates = deque(state["recent_activates"],
                                       maxlen=self._faw_window)
        self._last_activate_time = state["last_activate_time"]
        self._next_refresh = state["next_refresh"]
        self._last_time = state["last_time"]
        self._last_cas_time = state["last_cas_time"]
        # Older checkpoints stored this list in heap order; sorting is the
        # identity on the ascending order service_scalar now maintains.
        self._outstanding = deque(sorted(state["outstanding"]))
        self.stats_queue_stalls = state["queue_stalls"]

    def finish(self, end_time: int) -> None:
        """Close the books at trace end (fixes elapsed-cycle accounting)."""
        self.stats.elapsed_cycles = max(end_time, self._last_time, self._bus_free_time)

    def idle_headroom(self, now: int) -> int:
        """Cycles until the data bus is next free — a cheap congestion probe
        prefetch throttles can use."""
        return max(0, self._bus_free_time - now)

    def outstanding_requests(self) -> int:
        """Controller-queue slots currently occupied (in-flight requests
        not yet known to have completed)."""
        return len(self._outstanding)
