"""LPDDR4 DRAM channel model (DRAMSim2-lite).

A per-request greedy timing model with per-bank row-buffer state, rank-level
tRRD/tFAW activation constraints, shared data-bus serialization, write-to-
read turnaround, and periodic refresh — the Table-1 timing parameters drive
every latency.  Not cycle-stepped (Python would be far too slow for the
paper's trace lengths), but it reproduces the first-order effects the
evaluation depends on: row-hit vs row-miss latency, bandwidth contention
from prefetch traffic, and activation energy.
"""

from repro.dram.request import MemRequest, RequestKind
from repro.dram.address_mapping import AddressMapping
from repro.dram.bank import Bank
from repro.dram.channel import DRAMChannel
from repro.dram.stats import DRAMStats

__all__ = [
    "MemRequest",
    "RequestKind",
    "AddressMapping",
    "Bank",
    "DRAMChannel",
    "DRAMStats",
]
