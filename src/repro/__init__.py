"""Planaria: Pattern Directed Cross-page Composite Prefetcher (DAC 2024).

A complete Python reproduction of the paper's system: the SLP + TLP
composite prefetcher with its decoupled coordinator, plus every substrate
the evaluation needs (synthetic mobile traces, system cache, LPDDR4 DRAM
model, power model, BOP/SPP baselines) and a benchmark harness regenerating
every figure.

Start with:

>>> from repro.sim.runner import compare_prefetchers
>>> results = compare_prefetchers("CFM", ("none", "planaria"), length=30_000)
>>> results["planaria"].hit_rate > results["none"].hit_rate
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
