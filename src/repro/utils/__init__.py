"""Shared low-level utilities: bit manipulation, statistics, counters."""

from repro.utils.bitops import (
    bitmap_from_offsets,
    bitmap_overlap,
    hamming_distance,
    iter_set_bits,
    popcount,
)
from repro.utils.counters import SaturatingCounter
from repro.utils.statistics import Histogram, RunningStats

__all__ = [
    "bitmap_from_offsets",
    "bitmap_overlap",
    "hamming_distance",
    "iter_set_bits",
    "popcount",
    "SaturatingCounter",
    "Histogram",
    "RunningStats",
]
