"""Streaming statistics containers used by every simulator component.

Both classes accept one sample at a time so simulators never need to retain
full latency traces in memory (paper traces are tens of millions of
requests).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple


class RunningStats:
    """Welford single-pass mean/variance with min/max tracking."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, sample: float) -> None:
        """Fold one sample into the running aggregate."""
        self.count += 1
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)
        if self.min is None or sample < self.min:
            self.min = sample
        if self.max is None or sample > self.max:
            self.max = sample

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self._mean * self.count

    def state_dict(self) -> dict:
        """Snapshot every accumulator field (checkpoint support).

        The values are returned verbatim — no rounding, no re-derivation —
        so a :meth:`load_state` round-trip is bit-identical.
        """
        return {"count": self.count, "mean": self._mean, "m2": self._m2,
                "min": self.min, "max": self.max}

    def load_state(self, state: dict) -> None:
        self.count = state["count"]
        self._mean = state["mean"]
        self._m2 = state["m2"]
        self.min = state["min"]
        self.max = state["max"]

    def merge(self, other: "RunningStats") -> None:
        """Fold another aggregate into this one (parallel-channel merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min, self.max = other.min, other.max
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean += delta * other.count / combined
        self.count = combined
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def __repr__(self) -> str:
        return f"RunningStats(count={self.count}, mean={self.mean:.3f}, stddev={self.stddev:.3f})"


class Histogram:
    """Fixed-width bucket histogram for latency / reuse-distance profiles."""

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self.bucket_width = bucket_width
        self._buckets: Dict[int, int] = {}
        self.count = 0

    def add(self, sample: float) -> None:
        bucket = int(sample // self.bucket_width)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1

    def state_dict(self) -> dict:
        """Snapshot the bucket table (checkpoint support)."""
        return {"bucket_width": self.bucket_width,
                "buckets": dict(self._buckets), "count": self.count}

    def load_state(self, state: dict) -> None:
        if state["bucket_width"] != self.bucket_width:
            raise ValueError(
                f"cannot load a {state['bucket_width']}-wide histogram into "
                f"a {self.bucket_width}-wide one")
        self._buckets = dict(state["buckets"])
        self.count = state["count"]

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (parallel-channel merge).

        Both histograms must use the same bucket width — merging
        differently-quantised histograms would silently mis-bin samples.
        """
        if other.bucket_width != self.bucket_width:
            raise ValueError(
                f"cannot merge histograms with bucket widths "
                f"{self.bucket_width} and {other.bucket_width}")
        for bucket, count in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + count
        self.count += other.count

    def buckets(self) -> List[Tuple[float, int]]:
        """Sorted (bucket lower bound, count) pairs."""
        return [
            (bucket * self.bucket_width, count)
            for bucket, count in sorted(self._buckets.items())
        ]

    def percentile(self, fraction: float) -> float:
        """Lower bound of the bucket containing the given percentile.

        Args:
            fraction: in ``[0, 1]``; e.g. ``0.99`` for p99.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        seen = 0
        lower_bound = 0.0
        for lower_bound, count in self.buckets():
            seen += count
            if seen >= target:
                return lower_bound
        return lower_bound

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, buckets={len(self._buckets)})"
