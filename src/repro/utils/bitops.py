"""Bitmap helpers for footprint-snapshot patterns.

SLP and TLP represent a page segment's footprint as a 16-bit integer bitmap
(bit ``i`` set means block ``i`` of the segment was accessed).  These helpers
keep all bit twiddling in one audited place.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def popcount(bitmap: int) -> int:
    """Number of set bits in ``bitmap`` (must be non-negative)."""
    if bitmap < 0:
        raise ValueError(f"popcount of negative value {bitmap}")
    return bitmap.bit_count()


def iter_set_bits(bitmap: int) -> Iterator[int]:
    """Yield the positions of set bits in ascending order.

    Extracts the lowest set bit with ``bitmap & -bitmap`` each step, so
    the cost scales with the number of *set* bits, not the bitmap width
    — these run on every SLP/TLP observe/issue.

    >>> list(iter_set_bits(0b1010))
    [1, 3]
    """
    if bitmap < 0:
        raise ValueError(f"iter_set_bits of negative value {bitmap}")
    while bitmap:
        lowest = bitmap & -bitmap
        yield lowest.bit_length() - 1
        bitmap ^= lowest


def bitmap_from_offsets(offsets: Iterable[int], width: int = 16) -> int:
    """Build a bitmap with the given bit positions set.

    Args:
        offsets: bit positions; each must be in ``0..width-1``.
        width: bitmap width in bits (16 for segment bitmaps).
    """
    bitmap = 0
    for offset in offsets:
        if not 0 <= offset < width:
            raise ValueError(f"offset {offset} out of range 0..{width - 1}")
        bitmap |= 1 << offset
    return bitmap


def bitmap_overlap(a: int, b: int) -> int:
    """Number of bit positions set in both bitmaps (``popcount(a & b)``)."""
    return popcount(a & b)


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bit positions between two bitmaps.

    TLP's neighbour test declares two pages learnable neighbours when the
    Hamming distance of their bitmaps is below a threshold (paper: 4 bits).
    """
    return popcount(a ^ b)


def bitmap_to_string(bitmap: int, width: int = 16) -> str:
    """Render a bitmap MSB-first as a fixed-width 0/1 string for debugging."""
    if bitmap < 0:
        raise ValueError(f"bitmap_to_string of negative value {bitmap}")
    if bitmap >> width:
        raise ValueError(f"bitmap {bitmap:#x} wider than {width} bits")
    return format(bitmap, f"0{width}b")
