"""Saturating counters, as used throughout hardware prefetcher metadata."""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit saturating up/down counter.

    Used by SPP's pattern-table confidence counters and BOP's offset scores.
    The counter clamps at ``0`` and ``max_value`` instead of wrapping.
    """

    __slots__ = ("_value", "max_value")

    def __init__(self, bits: int = 2, initial: int = 0) -> None:
        if bits < 1:
            raise ValueError(f"counter needs at least 1 bit, got {bits}")
        self.max_value = (1 << bits) - 1
        if not 0 <= initial <= self.max_value:
            raise ValueError(f"initial {initial} out of range 0..{self.max_value}")
        self._value = initial

    @property
    def value(self) -> int:
        return self._value

    def increment(self, amount: int = 1) -> int:
        """Add ``amount``, saturating at the maximum; returns the new value."""
        self._value = min(self.max_value, self._value + amount)
        return self._value

    def decrement(self, amount: int = 1) -> int:
        """Subtract ``amount``, saturating at zero; returns the new value."""
        self._value = max(0, self._value - amount)
        return self._value

    def reset(self, value: int = 0) -> None:
        if not 0 <= value <= self.max_value:
            raise ValueError(f"reset value {value} out of range 0..{self.max_value}")
        self._value = value

    def is_saturated(self) -> bool:
        return self._value == self.max_value

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"SaturatingCounter(value={self._value}, max={self.max_value})"
