"""Shared run provenance: who produced a number, on what machine.

Every ``BENCH_*.json`` writer and the campaign runner stamp their
output with the same provenance block — git revision, python/numpy
versions, CPU count and platform — so a recorded number can always be
traced back to the exact code and host that produced it, instead of
each writer growing its own ad-hoc dict.

:func:`config_fingerprint` lives here too (re-exported by
:mod:`repro.service.checkpoint` for compatibility): the short stable
hash over (prefetcher name, full config) that checkpoint restore
validation, cross-worker migration and per-campaign-cell provenance all
share.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from pathlib import Path
from typing import Any, Dict, Optional

_REPO_ROOT = Path(__file__).resolve().parents[3]


def git_revision(repo_root: Optional[Path] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a work tree.

    Never raises: provenance stamping must not be able to fail a
    benchmark or campaign, so any git problem (no binary, not a repo,
    timeout) degrades to ``None``.
    """
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root or _REPO_ROOT),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    revision = result.stdout.strip()
    return revision or None


def runtime_provenance(**extra: Any) -> Dict[str, Any]:
    """The shared provenance block: git rev, versions, cpu count.

    ``extra`` key/values are merged in (and may override the defaults),
    so writers can add their own fields — e.g. ``engine_mode`` — without
    a second dict merge at the call site.  Deliberately excludes wall
    timestamps: reports that embed this block stay byte-comparable
    across reruns of the same code on the same host.
    """
    import numpy

    entry: Dict[str, Any] = {
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }
    entry.update(extra)
    return entry


def config_fingerprint(prefetcher: str, config: Any) -> str:
    """A stable short hash over (prefetcher name, full config).

    Two engines share a fingerprint exactly when a checkpoint written by
    one can be ``load_state()``-ed into the other: same prefetcher
    registry name, bit-identical configuration.  The hash is computed
    over the canonical JSON of :func:`repro.config_io.to_dict`, so it is
    stable across processes and Python versions — the property
    cross-worker migration and campaign-cell re-verification rely on.
    """
    from repro.config_io import to_dict as config_to_dict

    canonical = json.dumps({"prefetcher": prefetcher,
                            "config": config_to_dict(config)},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def degraded_scaling(cores: Optional[int], max_workers: int) -> Optional[str]:
    """Why a scaling measurement on this host is *not* a scaling number.

    Returns a human-readable warning when ``max_workers`` worker
    processes would time-slice fewer CPU cores (the 1-core-container
    trap: the sweep then measures sharding overhead, not speedup), or
    ``None`` when the host can actually run them in parallel.
    """
    cores = cores or 1
    if cores >= max_workers:
        return None
    return (f"host has {cores} CPU core(s) for {max_workers} worker "
            f"process(es): workers time-slice the cores, so throughput "
            f"does not measure scaling — rerun on >= {max_workers} cores "
            f"(docs/service.md)")
