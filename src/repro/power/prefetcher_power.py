"""Prefetcher metadata power: SRAM access energy + leakage.

The paper's headline power claim (Planaria +0.5 % vs BOP +13.5 % / SPP
+9.7 %) is dominated by *extra DRAM traffic*, but the metadata tables also
cost SRAM reads/writes and leakage proportional to storage size — Planaria's
345.2 KB of tables is small next to the 4 MB SC, and this model accounts for
it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PowerConfig


@dataclass(frozen=True)
class PrefetcherActivity:
    """Counts of metadata-table operations reported by a prefetcher."""

    table_reads: int = 0
    table_writes: int = 0
    storage_bits: int = 0


class PrefetcherPowerModel:
    """Energy of a prefetcher's metadata tables over a run."""

    def __init__(self, power: PowerConfig) -> None:
        self.power = power

    def energy_nj(self, activity: PrefetcherActivity, elapsed_cycles: int) -> float:
        """Dynamic access energy + leakage over the run, in nJ."""
        power = self.power
        dynamic_nj = (
            activity.table_reads * power.sram_read_energy_pj
            + activity.table_writes * power.sram_write_energy_pj
        ) * 1e-3
        storage_kb = activity.storage_bits / 8 / 1024
        seconds = elapsed_cycles / (power.clock_mhz * 1e6)
        leakage_nj = power.sram_leakage_mw_per_kb * storage_kb * seconds * 1e6
        return dynamic_nj + leakage_nj
