"""Memory-system power model.

The paper embeds a manufacturer power model into its simulator (Section 5)
and reports total memory-system power with each prefetcher (Figure 10).  We
use the standard Micron-style DRAM power methodology (IDD currents ×
voltage, per-event energies derived from current deltas over their timing
windows) plus an SRAM energy model for prefetcher metadata tables.
"""

from repro.power.dram_power import DRAMPowerModel, DRAMPowerBreakdown
from repro.power.prefetcher_power import PrefetcherPowerModel
from repro.power.model import MemorySystemPower, PowerReport

__all__ = [
    "DRAMPowerModel",
    "DRAMPowerBreakdown",
    "PrefetcherPowerModel",
    "MemorySystemPower",
    "PowerReport",
]
