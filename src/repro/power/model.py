"""Combined memory-system power: DRAM + prefetcher metadata.

Produces the Figure-10 quantity: total memory-system power for a run,
comparable across prefetcher configurations on the same trace (trace-driven
runs share arrival times, so energy ratios equal power ratios).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DRAMTiming, PowerConfig
from repro.dram.stats import DRAMStats
from repro.power.dram_power import DRAMPowerBreakdown, DRAMPowerModel
from repro.power.prefetcher_power import PrefetcherActivity, PrefetcherPowerModel


@dataclass(frozen=True)
class PowerReport:
    """Total memory-system energy/power for one simulation run."""

    dram: DRAMPowerBreakdown
    prefetcher_nj: float

    @property
    def total_nj(self) -> float:
        return self.dram.total_nj + self.prefetcher_nj

    @property
    def average_power_mw(self) -> float:
        seconds = self.dram.elapsed_seconds
        if seconds <= 0:
            return 0.0
        return self.total_nj * 1e-9 / seconds * 1e3

    def overhead_vs(self, baseline: "PowerReport") -> float:
        """Fractional power increase over ``baseline`` (Figure 10's metric).

        Positive = more power than the baseline; Planaria's HI3/PM cases
        come out negative (prefetching converts row conflicts to row hits,
        saving activate energy).
        """
        if baseline.total_nj <= 0:
            return 0.0
        return self.total_nj / baseline.total_nj - 1.0


class MemorySystemPower:
    """Facade tying the DRAM and prefetcher power models together."""

    def __init__(self, power: PowerConfig, timing: DRAMTiming) -> None:
        self.dram_model = DRAMPowerModel(power, timing)
        self.prefetcher_model = PrefetcherPowerModel(power)

    def report(self, dram_stats: DRAMStats,
               prefetcher_activity: PrefetcherActivity) -> PowerReport:
        dram = self.dram_model.estimate(dram_stats)
        prefetcher_nj = self.prefetcher_model.energy_nj(
            prefetcher_activity, dram_stats.elapsed_cycles
        )
        return PowerReport(dram=dram, prefetcher_nj=prefetcher_nj)
