"""Micron-style LPDDR4 power estimation from event counts.

Per-event energies are derived from IDD current deltas over the relevant
timing windows (the classic "Calculating Memory System Power for DDR"
methodology):

* activate/precharge pair: ``VDD × (IDD0 − IDD3N) × tRC``
* read burst:             ``VDD × (IDD4R − IDD3N) × burst``
* write burst:            ``VDD × (IDD4W − IDD3N) × burst``
* refresh:                ``VDD × (IDD5 − IDD3N) × tRFC``
* background:             ``VDD × (IDD3N·busy + IDD2N·idle)``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DRAMTiming, PowerConfig
from repro.dram.stats import DRAMStats


@dataclass(frozen=True)
class DRAMPowerBreakdown:
    """Energy per component in nanojoules, plus average power in mW."""

    activate_nj: float
    read_nj: float
    write_nj: float
    refresh_nj: float
    background_nj: float
    elapsed_cycles: int
    clock_mhz: float

    @property
    def total_nj(self) -> float:
        return (
            self.activate_nj + self.read_nj + self.write_nj
            + self.refresh_nj + self.background_nj
        )

    @property
    def elapsed_seconds(self) -> float:
        if self.clock_mhz <= 0:
            return 0.0
        return self.elapsed_cycles / (self.clock_mhz * 1e6)

    @property
    def average_power_mw(self) -> float:
        seconds = self.elapsed_seconds
        if seconds <= 0:
            return 0.0
        return self.total_nj * 1e-9 / seconds * 1e3


class DRAMPowerModel:
    """Maps :class:`DRAMStats` event counts to energy."""

    def __init__(self, power: PowerConfig, timing: DRAMTiming) -> None:
        self.power = power
        self.timing = timing
        self._cycle_seconds = 1.0 / (power.clock_mhz * 1e6)

    def _event_energy_nj(self, current_delta_ma: float, cycles: int) -> float:
        """Energy of one event drawing ``current_delta_ma`` above background
        for ``cycles`` memory cycles, in nJ."""
        watts = current_delta_ma * 1e-3 * self.power.vdd
        return watts * cycles * self._cycle_seconds * 1e9

    def estimate(self, stats: DRAMStats) -> DRAMPowerBreakdown:
        """Compute the channel's energy breakdown from its counters."""
        power = self.power
        timing = self.timing
        activate_nj = stats.activates * self._event_energy_nj(
            power.idd0 - power.idd3n, timing.tRC
        )
        reads = stats.demand_reads + stats.prefetch_reads
        read_nj = reads * self._event_energy_nj(
            power.idd4r - power.idd3n, timing.burst_cycles
        )
        writes = stats.demand_writes + stats.writebacks
        write_nj = writes * self._event_energy_nj(
            power.idd4w - power.idd3n, timing.burst_cycles
        )
        refresh_nj = stats.refreshes * self._event_energy_nj(
            power.idd5 - power.idd3n, timing.tRFC
        )
        busy = min(stats.data_bus_cycles, stats.elapsed_cycles)
        idle = max(0, stats.elapsed_cycles - busy)
        background_nj = (
            self._event_energy_nj(power.idd3n, busy)
            + self._event_energy_nj(power.idd2n, idle)
        )
        return DRAMPowerBreakdown(
            activate_nj=activate_nj,
            read_nj=read_nj,
            write_nj=write_nj,
            refresh_nj=refresh_nj,
            background_nj=background_nj,
            elapsed_cycles=stats.elapsed_cycles,
            clock_mhz=power.clock_mhz,
        )
