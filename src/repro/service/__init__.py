"""Streaming simulation service.

Turns the batch reproduction into a long-lived online system, in three
layers (see docs/service.md):

* :mod:`repro.service.checkpoint` — versioned, atomically written on-disk
  checkpoints of a mid-trace :class:`~repro.sim.engine.SystemSimulator`.
* :mod:`repro.service.session` — :class:`SessionManager`: many named
  simulation sessions multiplexed over a worker pool with bounded
  in-flight chunks (backpressure), live metrics snapshots, idle-session
  eviction to disk, and crash-safe resume.
* :mod:`repro.service.server` / :mod:`repro.service.client` — an asyncio
  TCP server speaking a length-prefixed JSON + binary-column protocol,
  and the matching synchronous :class:`ServiceClient`.

Every path preserves the repository's core contract: a session fed in
arbitrary chunks — across checkpoints, evictions and process restarts —
reports :class:`~repro.sim.metrics.RunMetrics` bit-identical to an
offline :func:`~repro.sim.runner.simulate` over the same trace.
"""

from repro.service.checkpoint import (Checkpoint, load_checkpoint,
                                      restore_simulator, save_checkpoint)
from repro.service.client import ServiceClient
from repro.service.session import SessionManager, SessionSnapshot
from repro.service.server import SimulationServer

__all__ = [
    "Checkpoint",
    "ServiceClient",
    "SessionManager",
    "SessionSnapshot",
    "SimulationServer",
    "load_checkpoint",
    "restore_simulator",
    "save_checkpoint",
]
