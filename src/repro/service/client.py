"""Synchronous client for the streaming simulation service.

:class:`ServiceClient` wraps one TCP connection and offers one method
per protocol op.  Requests on a connection are strictly ordered, so a
client instance is safe to use from a single thread without extra
locking; use one client per thread for concurrent sessions.

Typical use::

    with ServiceClient.connect(host, port) as client:
        client.open("run-a", "planaria", config=config,
                    warmup_records=warmup)
        for chunk in chunks:
            client.feed("run-a", chunk)
        snapshot = client.close_session("run-a")
        print(snapshot.metrics.amat)
"""

from __future__ import annotations

import socket
from typing import Iterable, List, Optional

from repro.config import SimConfig
from repro.config_io import to_dict as config_to_dict
from repro.errors import ServiceError
from repro.obs.health import HealthReport
from repro.obs.trace_spans import (NULL_SPANS, SPAN_CLIENT_PREFIX,
                                   SpanRecord, SpanRecorder, new_id)
from repro.service import protocol
from repro.service.session import SessionSnapshot
from repro.trace.buffer import TraceBuffer

#: Default record count per chunk for :meth:`ServiceClient.feed_trace`.
DEFAULT_CHUNK_RECORDS = 4096


class ServiceClient:
    """A blocking, single-connection client for the simulation server.

    Constructed with ``tracing=True``, the client records one
    ``client.<op>`` span per request round trip into its own
    :class:`~repro.obs.trace_spans.SpanRecorder` (``client.spans``) and
    propagates the trace context over the wire (a ``"trace"`` header
    field), so a tracing server's request/fifo-wait/feed/engine spans
    join the client's trace — one end-to-end causal chain per request.
    """

    def __init__(self, sock: socket.socket, tracing: bool = False) -> None:
        self._sock = sock
        self._closed = False
        self.spans = SpanRecorder() if tracing else NULL_SPANS

    @classmethod
    def connect(cls, host: str = "127.0.0.1", port: int = 8642,
                timeout: Optional[float] = None,
                tracing: bool = False) -> "ServiceClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock, tracing=tracing)

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------
    def _recv_exact(self, count: int) -> bytes:
        chunks: List[bytes] = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ServiceError("server closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _request(self, header: dict, payload: bytes = b"") -> dict:
        if self._closed:
            raise ServiceError("client is closed")
        open_span = None
        if self.spans.enabled:
            open_span = self.spans.begin(
                f"{SPAN_CLIENT_PREFIX}{header.get('op')}",
                trace_id=new_id(), session=header.get("session"))
            header = {**header, "trace": {"trace_id": open_span.trace_id,
                                          "span_id": open_span.span_id}}
        try:
            self._sock.sendall(protocol.encode_frame(header, payload))
            prefix = self._recv_exact(protocol.FRAME_PREFIX.size)
            header_len, payload_len = protocol.parse_prefix(prefix)
            response = protocol.decode_header(self._recv_exact(header_len))
            if payload_len:
                self._recv_exact(payload_len)  # responses carry no payload
        except BaseException:
            if open_span is not None:
                self.spans.end(open_span, error=True)
            raise
        if open_span is not None:
            self.spans.end(open_span, ok=bool(response.get("ok", False)))
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unspecified server error"))
        return response

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def open(self, session: str, prefetcher: str, *,
             workload: str = "stream", config: Optional[SimConfig] = None,
             warmup_records: Optional[Iterable[int]] = None,
             resume: bool = False,
             epoch_records: Optional[int] = None,
             lineage: bool = False) -> SessionSnapshot:
        header = {
            "op": "open",
            "session": session,
            "prefetcher": prefetcher,
            "workload": workload,
            "resume": resume,
        }
        if config is not None:
            header["config"] = config_to_dict(config)
        if warmup_records is not None:
            header["warmup_records"] = [int(n) for n in warmup_records]
        if epoch_records is not None:
            header["epoch_records"] = int(epoch_records)
        if lineage:
            header["lineage"] = True
        response = self._request(header)
        return protocol.snapshot_from_dict(response["snapshot"])

    def feed(self, session: str, buffer: TraceBuffer) -> int:
        """Send one chunk; returns the record count the server accepted."""
        response = self._request(
            {"op": "feed", "session": session, "count": len(buffer)},
            protocol.encode_buffer(buffer))
        return int(response["accepted"])

    def feed_trace(self, session: str, buffer: TraceBuffer,
                   chunk_records: int = DEFAULT_CHUNK_RECORDS) -> int:
        """Stream a whole trace as fixed-size chunks; returns records sent."""
        if chunk_records <= 0:
            raise ServiceError(f"chunk_records must be positive, "
                               f"got {chunk_records}")
        sent = 0
        for start in range(0, len(buffer), chunk_records):
            sent += self.feed(session, buffer[start:start + chunk_records])
        return sent

    def snapshot(self, session: str, wait: bool = True) -> SessionSnapshot:
        response = self._request(
            {"op": "snapshot", "session": session, "wait": wait})
        return protocol.snapshot_from_dict(response["snapshot"])

    def timeline(self, session: str, include_partial: bool = True,
                 events: bool = False, wait: bool = True):
        """Poll a session's live epoch timeline.

        Returns ``(epochs, events)`` — ``events`` is ``None`` unless
        requested.  The epochs are bit-identical to what an offline run
        over the same records would dump (the server quiesces the session
        first unless ``wait=False``).
        """
        response = self._request({
            "op": "timeline",
            "session": session,
            "include_partial": include_partial,
            "events": events,
            "wait": wait,
        })
        epochs = protocol.epochs_from_list(response["epochs"])
        retained = (protocol.events_from_list(response["events"])
                    if "events" in response else None)
        return epochs, retained

    def lineage(self, session: str, events: bool = False,
                wait: bool = True) -> dict:
        """Poll a session's merged lineage summary.

        The session must have been opened with ``lineage=True``.  With
        ``events`` the response also carries the retained fate events
        under ``"events"``.  The summary is bit-identical to what an
        offline run over the same records would report (the server
        quiesces the session first unless ``wait=False``).
        """
        response = self._request({
            "op": "lineage",
            "session": session,
            "events": events,
            "wait": wait,
        })
        return dict(response["lineage"])

    def metrics_text(self) -> str:
        """The server's Prometheus text exposition (all live sessions)."""
        return str(self._request({"op": "metrics"})["text"])

    def checkpoint(self, session: str) -> str:
        return str(self._request(
            {"op": "checkpoint", "session": session})["path"])

    def close_session(self, session: str,
                      delete_checkpoint: bool = True) -> SessionSnapshot:
        response = self._request({
            "op": "close",
            "session": session,
            "delete_checkpoint": delete_checkpoint,
        })
        return protocol.snapshot_from_dict(response["snapshot"])

    def evict_idle(self, max_idle_seconds: float = 0.0) -> List[str]:
        response = self._request(
            {"op": "evict", "max_idle_seconds": max_idle_seconds})
        return list(response["evicted"])

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def server_spans(self, clear: bool = False):
        """The server's retained spans + per-op latency summary.

        Returns ``(spans, summary)``; requires a server started with
        tracing enabled.  With ``clear``, the server's span ring is
        drained (latency aggregates keep accumulating).
        """
        response = self._request({"op": "spans", "clear": clear})
        return (protocol.spans_from_list(response["spans"]),
                dict(response["summary"]))

    def health(self) -> HealthReport:
        """One health evaluation over the server's live sessions.

        Against a sharded router this is the fleet-composed report:
        worst status wins, verdict details name the worker they came
        from, and the session map spans every worker.
        """
        return protocol.health_from_dict(
            self._request({"op": "health"})["health"])

    # ------------------------------------------------------------------
    # Cluster ops (sharded router only; a single-process server answers
    # these with an "unknown op" error)
    # ------------------------------------------------------------------
    def migrate(self, session: str, target: Optional[int] = None) -> dict:
        """Migrate a session to another engine worker via its checkpoint.

        ``target`` picks the destination worker id; ``None`` lets the
        router choose any other live worker.  Returns the router's
        response (``worker`` = the new owner, ``snapshot`` = the
        restored session's state).
        """
        header: dict = {"op": "migrate", "session": session}
        if target is not None:
            header["worker"] = int(target)
        return self._request(header)

    def cluster(self) -> dict:
        """Router topology: per-worker pids/sessions + router counters."""
        return self._request({"op": "cluster"})

    def scale(self, workers: int) -> dict:
        """Grow or shrink the worker fleet to ``workers`` processes.

        Joining workers take over the ring segments the consistent hash
        assigns them (affected sessions migrate over); leaving workers
        drain their sessions to the remaining ring before exiting.
        """
        return self._request({"op": "scale", "workers": int(workers)})

    def client_spans(self, clear: bool = False) -> List[SpanRecord]:
        """Spans this client recorded locally (``tracing=True`` only)."""
        return self.spans.spans(clear=clear)

    def shutdown_server(self) -> None:
        """Ask the server to drain and stop (returns once acknowledged)."""
        self._request({"op": "shutdown"})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
