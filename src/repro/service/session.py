"""Session manager: many named simulations multiplexed over a worker pool.

One :class:`Session` owns one live :class:`~repro.sim.engine.SystemSimulator`
plus its stream position; the :class:`SessionManager` multiplexes sessions
over a shared thread pool, one in-order chunk pipeline per session:

* **Backpressure** — each session admits at most ``max_inflight_chunks``
  queued-or-running chunks; :meth:`SessionManager.feed` blocks past that,
  which an asyncio server surfaces as natural TCP backpressure (the
  connection's frames stop being consumed).  Engagements are counted in
  :attr:`SessionManager.backpressure_waits` so the service benchmark can
  assert the limit actually bit.
* **Ordering** — chunks apply in submission order: a session has exactly
  one drainer task at a time, which pops its FIFO until empty.  Distinct
  sessions run concurrently; within a feed, channel-grain work fans out
  through the same :class:`~repro.sim.executor.ParallelExecutor` path the
  batch runner uses.
* **Eviction / resume** — :meth:`evict_idle` checkpoints cold sessions to
  disk and drops them from memory; the next request transparently
  restores them.  Checkpoints are atomic (see
  :mod:`repro.service.checkpoint`), so a crash between checkpoints loses
  at most the chunks fed since the last one — :attr:`Session.records_fed`
  tells the client where to resume the stream.

All public methods are thread-safe; :meth:`feed` returns a
:class:`concurrent.futures.Future` so callers may pipeline chunks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SimConfig
from repro.errors import (ServiceError, SessionExistsError,
                          SessionNotFoundError)
from repro.obs import (SystemLineage, SystemObservability, attach_lineage,
                       attach_observability)
from repro.obs.events import TraceEvent
from repro.obs.health import HealthConfig, HealthEngine, HealthReport
from repro.obs.timeline import EpochRecord
from repro.obs.trace_spans import (NULL_SPANS, SPAN_FEED_CHUNK,
                                   SPAN_FIFO_WAIT, SpanRecorder, now_us)
from repro.prefetch.registry import make_prefetcher
from repro.service.checkpoint import (Checkpoint, load_checkpoint,
                                      save_checkpoint, validate_restore)
from repro.sim.engine import SystemSimulator
from repro.sim.executor import Parallelism
from repro.sim.metrics import RunMetrics
from repro.sim.runner import collect_metrics
from repro.trace.buffer import TraceBuffer

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SessionSnapshot:
    """A point-in-time view of one session: identity, position, metrics."""

    name: str
    prefetcher: str
    workload: str
    records_fed: int
    chunks_fed: int
    metrics: RunMetrics


class Session:
    """One live streaming simulation (internal to the manager)."""

    def __init__(self, name: str, prefetcher: str, workload: str,
                 config: SimConfig,
                 warmup_records: Optional[Sequence[int]] = None,
                 epoch_records: Optional[int] = None,
                 lineage: bool = False) -> None:
        self.name = name
        self.prefetcher = prefetcher
        self.workload = workload
        self.config = config
        self.simulator = SystemSimulator(
            config, lambda layout, channel: make_prefetcher(prefetcher,
                                                            layout, channel))
        self.epoch_records = epoch_records
        self.obs: Optional[SystemObservability] = None
        if epoch_records:
            self.obs = attach_observability(self.simulator,
                                            epoch_records=int(epoch_records))
        self.lineage: Optional[SystemLineage] = (
            attach_lineage(self.simulator) if lineage else None)
        if warmup_records is not None:
            self.simulator.set_stream_warmup(warmup_records)
        self.records_fed = 0
        self.chunks_fed = 0
        self.last_active = time.monotonic()
        #: Last time a chunk *completed* (vs ``last_active`` = accepted) —
        #: the starvation detector's progress signal.
        self.last_progress = time.monotonic()
        # Chunk pipeline state, all guarded by `cond`.  Each pending entry
        # is (buffer, future, trace-context-or-None).
        self.cond = threading.Condition()
        self.pending: Deque[Tuple[TraceBuffer, Future,
                                  Optional[dict]]] = deque()
        self.inflight = 0
        self.drainer_scheduled = False
        self.closed = False
        self.error: Optional[str] = None

    @classmethod
    def from_checkpoint(cls, name: str, checkpoint: Checkpoint) -> "Session":
        session = cls.__new__(cls)
        session.name = name
        session.prefetcher = checkpoint.prefetcher
        session.workload = checkpoint.workload
        session.config = checkpoint.config
        # Observability must attach *before* load_state so each channel's
        # "obs" state entry restores into a live collector (the restored
        # session's timeline then continues the original's epoch stream).
        session.simulator = SystemSimulator(
            checkpoint.config,
            lambda layout, channel: make_prefetcher(checkpoint.prefetcher,
                                                    layout, channel))
        session.epoch_records = checkpoint.extra.get("epoch_records")
        session.obs = None
        if session.epoch_records:
            session.obs = attach_observability(
                session.simulator, epoch_records=int(session.epoch_records))
        # Lineage, like obs, attaches before load_state so each channel's
        # "lineage" state entry restores into a live collector.
        session.lineage = (attach_lineage(session.simulator)
                           if checkpoint.extra.get("lineage") else None)
        session.simulator.load_state(checkpoint.state)
        if session.obs is not None and session.obs.system_tracer.enabled:
            session.obs.system_tracer.emit(
                "checkpoint_restored", session._now(),
                records_fed=checkpoint.records_fed)
        session.records_fed = checkpoint.records_fed
        session.chunks_fed = checkpoint.chunks_fed
        session.last_active = time.monotonic()
        session.last_progress = time.monotonic()
        session.cond = threading.Condition()
        session.pending = deque()
        session.inflight = 0
        session.drainer_scheduled = False
        session.closed = False
        session.error = None
        return session

    def _now(self) -> int:
        """Latest simulated cycle across channels — event timestamps."""
        return max((channel_sim._last_time
                    for channel_sim in self.simulator.channels), default=0)

    def to_checkpoint(self) -> Checkpoint:
        extra = {}
        if self.epoch_records:
            extra["epoch_records"] = int(self.epoch_records)
        if self.lineage is not None:
            extra["lineage"] = True
        checkpoint = Checkpoint(
            prefetcher=self.prefetcher,
            workload=self.workload,
            config=self.config,
            records_fed=self.records_fed,
            chunks_fed=self.chunks_fed,
            state=self.simulator.state_dict(),
            extra=extra,
        )
        # Stamped after state_dict: the event records the save in the live
        # session, not inside the checkpoint being written.
        if self.obs is not None and self.obs.system_tracer.enabled:
            self.obs.system_tracer.emit("checkpoint_saved", self._now(),
                                        records_fed=self.records_fed)
        return checkpoint

    def snapshot(self) -> SessionSnapshot:
        return SessionSnapshot(
            name=self.name,
            prefetcher=self.prefetcher,
            workload=self.workload,
            records_fed=self.records_fed,
            chunks_fed=self.chunks_fed,
            metrics=collect_metrics(self.simulator, self.workload,
                                    self.prefetcher),
        )


class SessionManager:
    """Multiplexes named streaming simulations over a bounded worker pool.

    Args:
        checkpoint_dir: where session checkpoints live; ``None`` disables
            eviction, auto-checkpointing and resume.
        max_inflight_chunks: per-session cap on queued-or-running chunks —
            the backpressure bound.
        workers: thread-pool size shared by all sessions' drainers.
        parallelism: channel-grain execution mode for each chunk (same
            knob as the batch runner; ``"serial"`` is deterministic and
            the right default for many concurrent sessions).
        checkpoint_interval: auto-checkpoint a session every N chunks
            (0 disables; requires ``checkpoint_dir``).
        default_config: config for sessions opened without one.
        tracing: enable request tracing — one shared
            :class:`~repro.obs.trace_spans.SpanRecorder` covers every
            session (backpressure waits, per-chunk feeds, engine runs);
            off by default, in which case every trace point costs one
            attribute load + branch per chunk.
        health_config: detector thresholds for :meth:`health_report`
            (defaults apply when ``None``).
    """

    def __init__(self, checkpoint_dir: Optional[PathLike] = None,
                 max_inflight_chunks: int = 4, workers: int = 4,
                 parallelism: Parallelism = "serial",
                 checkpoint_interval: int = 0,
                 default_config: Optional[SimConfig] = None,
                 tracing: bool = False,
                 health_config: Optional[HealthConfig] = None) -> None:
        if max_inflight_chunks < 1:
            raise ServiceError(
                f"max_inflight_chunks must be >= 1, got {max_inflight_chunks}")
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.max_inflight_chunks = max_inflight_chunks
        self.parallelism = parallelism
        self.checkpoint_interval = checkpoint_interval
        self.default_config = default_config
        self._sessions: Dict[str, Session] = {}
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-session")
        self._shutdown = False
        #: Shared span recorder (the no-op singleton when tracing is off).
        self.spans = SpanRecorder() if tracing else NULL_SPANS
        self.health = HealthEngine(health_config)
        # Service-level counters (read by the bench / `stats` op).
        self.backpressure_waits = 0
        self.chunks_executed = 0
        self.records_executed = 0
        self.sessions_opened = 0
        self.sessions_resumed = 0

    # ------------------------------------------------------------------
    # Session lookup / lifecycle
    # ------------------------------------------------------------------
    def _checkpoint_path(self, name: str) -> Optional[Path]:
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / f"{name}.ckpt"

    def _get(self, name: str) -> Session:
        """A live session, transparently restoring an evicted one."""
        with self._lock:
            session = self._sessions.get(name)
            if session is not None:
                return session
            path = self._checkpoint_path(name)
            if path is None or not path.exists():
                raise SessionNotFoundError(name)
            session = Session.from_checkpoint(name, load_checkpoint(path))
            if self.spans.enabled:
                session.simulator.spans = self.spans
            self._sessions[name] = session
            self.sessions_resumed += 1
            return session

    def open(self, name: str, prefetcher: str, workload: str = "stream",
             config: Optional[SimConfig] = None,
             warmup_records: Optional[Sequence[int]] = None,
             resume: bool = False,
             epoch_records: Optional[int] = None,
             lineage: bool = False) -> SessionSnapshot:
        """Create a session (or, with ``resume``, restore its checkpoint).

        ``warmup_records`` fixes per-channel warmup windows up front (see
        :func:`~repro.sim.engine.channel_warmup_counts`); streaming
        sessions default to no warmup suppression.  ``epoch_records``
        enables observability: the session then answers ``timeline``
        queries with epochs of that many records per channel (a resumed
        session keeps the epoch size stored in its checkpoint).
        ``lineage`` enables prefetch provenance/fate accounting
        (:mod:`repro.obs.lineage`): the session then answers ``lineage``
        queries and exports ``planaria_lineage_*`` Prometheus series
        (a resumed session keeps the flag stored in its checkpoint).
        """
        if not name or "/" in name or "\x00" in name:
            raise ServiceError(f"invalid session name {name!r}")
        with self._lock:
            if self._shutdown:
                raise ServiceError("session manager is shut down")
            if name in self._sessions:
                raise SessionExistsError(f"session {name!r} is already open")
            path = self._checkpoint_path(name)
            if resume and path is not None and path.exists():
                checkpoint = load_checkpoint(path)
                # Refuse a restore into a different prefetcher/config
                # before any state loads (CheckpointMismatchError names
                # both fingerprints) — the guard cross-worker migration
                # depends on.
                validate_restore(name, checkpoint, prefetcher=prefetcher,
                                 config=config)
                session = Session.from_checkpoint(name, checkpoint)
                self.sessions_resumed += 1
            else:
                session = Session(
                    name, prefetcher, workload,
                    config or self.default_config or SimConfig.experiment_scale(),
                    warmup_records=warmup_records,
                    epoch_records=epoch_records,
                    lineage=lineage)
                self.sessions_opened += 1
            if self.spans.enabled:
                session.simulator.spans = self.spans
            self._sessions[name] = session
        return session.snapshot()

    # ------------------------------------------------------------------
    # The chunk pipeline
    # ------------------------------------------------------------------
    def feed(self, name: str, buffer: TraceBuffer,
             timeout: Optional[float] = None,
             trace: Optional[dict] = None) -> "Future[int]":
        """Queue one trace chunk; blocks while the session is saturated.

        Returns a future resolving to the session's total records fed once
        this chunk has been simulated.  The block-on-full behaviour *is*
        the backpressure contract: a caller cannot run more than
        ``max_inflight_chunks`` ahead of the simulator.

        ``trace`` is an optional wire trace context
        (``{"trace_id": ..., "span_id": ...}``): the chunk's backpressure
        wait and eventual application are then recorded as spans of that
        trace.
        """
        session = self._get(name)
        future: "Future[int]" = Future()
        with session.cond:
            if session.closed:
                raise ServiceError(f"session {name!r} is closed")
            if session.error is not None:
                raise ServiceError(
                    f"session {name!r} failed on an earlier chunk: "
                    f"{session.error}")
            if session.inflight >= self.max_inflight_chunks:
                self.backpressure_waits += 1
                wait_start = now_us() if self.spans.enabled else 0
                deadline = (None if timeout is None
                            else time.monotonic() + timeout)
                while session.inflight >= self.max_inflight_chunks:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        raise ServiceError(
                            f"session {name!r}: feed timed out under "
                            f"backpressure after {timeout}s")
                    session.cond.wait(remaining)
                if self.spans.enabled:
                    ctx = trace or {}
                    self.spans.record(
                        SPAN_FIFO_WAIT, wait_start, now_us() - wait_start,
                        trace_id=ctx.get("trace_id"),
                        parent_id=ctx.get("span_id"), session=name)
                if session.closed:
                    raise ServiceError(f"session {name!r} is closed")
            session.inflight += 1
            session.pending.append((buffer, future, trace))
            session.last_active = time.monotonic()
            if not session.drainer_scheduled:
                session.drainer_scheduled = True
                self._pool.submit(self._drain, session)
        return future

    def _drain(self, session: Session) -> None:
        """Apply one session's queued chunks in order until the FIFO dries."""
        while True:
            with session.cond:
                if not session.pending:
                    session.drainer_scheduled = False
                    session.cond.notify_all()
                    return
                buffer, future, trace = session.pending.popleft()
            if not future.set_running_or_notify_cancel():
                consumed = None  # cancelled before it started
            else:
                chunk_span = None
                if self.spans.enabled:
                    ctx = trace or {}
                    # Attached span: engine.feed below begins on this
                    # drainer thread and nests under it automatically.
                    chunk_span = self.spans.begin(
                        SPAN_FEED_CHUNK, trace_id=ctx.get("trace_id"),
                        parent_id=ctx.get("span_id"),
                        session=session.name, records=len(buffer))
                try:
                    consumed = session.simulator.feed(
                        buffer, parallelism=self.parallelism)
                except BaseException as exc:  # surface to the caller
                    future.set_exception(exc)
                    with session.cond:
                        # feed() acks on accept, so a caller that never
                        # awaits the future still sees the fault on its
                        # next snapshot/feed against this session.
                        session.error = f"{type(exc).__name__}: {exc}"
                    consumed = None
                if chunk_span is not None:
                    self.spans.end(chunk_span, ok=consumed is not None)
            with session.cond:
                if consumed is not None:
                    session.records_fed += consumed
                    session.chunks_fed += 1
                    self.chunks_executed += 1
                    self.records_executed += consumed
                    session.last_progress = time.monotonic()
                session.inflight -= 1
                session.last_active = time.monotonic()
                session.cond.notify_all()
            if consumed is not None:
                future.set_result(session.records_fed)
                if (self.checkpoint_interval
                        and self.checkpoint_dir is not None
                        and session.chunks_fed % self.checkpoint_interval == 0):
                    self._write_checkpoint(session)

    def _quiesce(self, session: Session,
                 timeout: Optional[float] = None) -> None:
        """Wait until every queued chunk of this session has applied."""
        with session.cond:
            if not session.cond.wait_for(lambda: session.inflight == 0,
                                         timeout):
                raise ServiceError(
                    f"session {session.name!r}: quiesce timed out")

    # ------------------------------------------------------------------
    # Snapshots, checkpoints, close
    # ------------------------------------------------------------------
    def snapshot(self, name: str, wait: bool = True) -> SessionSnapshot:
        """Live metrics for one session.

        With ``wait`` (default) the snapshot covers every chunk fed so
        far — the property the service equivalence tests rely on; with
        ``wait=False`` it reflects whatever has applied at call time.
        """
        session = self._get(name)
        if wait:
            self._quiesce(session)
        if session.error is not None:
            raise ServiceError(
                f"session {name!r} failed on an earlier chunk: "
                f"{session.error}")
        return session.snapshot()

    def timeline(self, name: str, include_partial: bool = True,
                 events: bool = False, wait: bool = True
                 ) -> Tuple[List[EpochRecord], Optional[List[TraceEvent]]]:
        """Live epoch timeline (and optionally retained events).

        With ``wait`` (default) the timeline covers every chunk fed so
        far, which makes it bit-identical to an offline run's post-hoc
        dump over the same records.  The trailing partial epoch is
        computed non-destructively — polling never perturbs collection.
        """
        session = self._get(name)
        if wait:
            self._quiesce(session)
        if session.error is not None:
            raise ServiceError(
                f"session {name!r} failed on an earlier chunk: "
                f"{session.error}")
        if session.obs is None:
            raise ServiceError(
                f"session {name!r} was opened without epoch_records; "
                f"no timeline is being collected")
        epochs = session.obs.merged_timeline(include_partial=include_partial)
        retained = session.obs.events() if events else None
        return epochs, retained

    def lineage(self, name: str, events: bool = False,
                wait: bool = True) -> dict:
        """Live lineage accounting for one session.

        Returns the merged per-channel summary (see
        :meth:`repro.obs.lineage.SystemLineage.summary`), with the
        retained fate events under ``"events"`` when requested.  With
        ``wait`` (default) the summary covers every chunk fed so far.
        """
        session = self._get(name)
        if wait:
            self._quiesce(session)
        if session.error is not None:
            raise ServiceError(
                f"session {name!r} failed on an earlier chunk: "
                f"{session.error}")
        if session.lineage is None:
            raise ServiceError(
                f"session {name!r} was opened without lineage; "
                f"no provenance is being collected")
        summary = session.lineage.summary()
        if events:
            summary["events"] = session.lineage.events()
        return summary

    def metrics_text(self) -> str:
        """Prometheus text exposition covering every live session."""
        from repro.obs.export import (epoch_samples, health_samples,
                                      lineage_samples, prometheus_text,
                                      snapshot_samples)

        with self._lock:
            sessions = [self._sessions[name]
                        for name in sorted(self._sessions)]
        samples = []
        for session in sessions:
            if session.error is not None:
                continue
            samples.extend(snapshot_samples(session.name, session.snapshot()))
            if session.obs is not None:
                timeline = session.obs.merged_timeline(include_partial=True)
                if timeline:
                    samples.extend(epoch_samples(session.name, timeline[-1]))
            if session.lineage is not None:
                samples.extend(lineage_samples(session.name,
                                               session.lineage.summary()))
        samples.extend(health_samples(self.health_report()))
        if self.spans.enabled:
            from repro.obs.export import span_samples
            samples.extend(span_samples(self.spans.summary()))
        return prometheus_text(samples)

    def live_sessions(self) -> List[Session]:
        """The in-memory sessions (for the health engine's read-only pass)."""
        with self._lock:
            return [self._sessions[name] for name in sorted(self._sessions)]

    def health_report(self) -> HealthReport:
        """One health evaluation over every live session (never quiesces)."""
        return self.health.evaluate(self, spans=self.spans)

    def span_summary(self) -> dict:
        """Per-span-name latency summary (empty when tracing is off)."""
        return self.spans.summary()

    def _write_checkpoint(self, session: Session) -> Path:
        path = self._checkpoint_path(session.name)
        if path is None:
            raise ServiceError("no checkpoint_dir configured")
        return save_checkpoint(path, session.to_checkpoint())

    def checkpoint(self, name: str) -> Path:
        """Quiesce a session and persist it; returns the checkpoint path."""
        session = self._get(name)
        self._quiesce(session)
        return self._write_checkpoint(session)

    def close(self, name: str, delete_checkpoint: bool = True
              ) -> SessionSnapshot:
        """Drain, report final metrics, and forget a session.

        A cleanly closed session is gone — by default its checkpoint file
        is removed too, so the name cannot accidentally resume; pass
        ``delete_checkpoint=False`` to keep the final state on disk.
        """
        session = self._get(name)
        self._quiesce(session)
        with session.cond:
            session.closed = True
            session.cond.notify_all()
        final = session.snapshot()
        with self._lock:
            self._sessions.pop(name, None)
        path = self._checkpoint_path(name)
        if path is not None:
            if delete_checkpoint:
                path.unlink(missing_ok=True)
            else:
                save_checkpoint(path, session.to_checkpoint())
        return final

    # ------------------------------------------------------------------
    # Eviction and shutdown
    # ------------------------------------------------------------------
    def evict_idle(self, max_idle_seconds: float) -> List[str]:
        """Checkpoint-and-drop sessions idle longer than the threshold.

        Only quiescent sessions (no queued chunks) are evicted; the next
        request against an evicted name transparently restores it from
        its checkpoint.  No-op without a ``checkpoint_dir``.
        """
        if self.checkpoint_dir is None:
            return []
        now = time.monotonic()
        evicted: List[str] = []
        with self._lock:
            candidates = list(self._sessions.items())
        for name, session in candidates:
            with session.cond:
                idle = (session.inflight == 0
                        and now - session.last_active >= max_idle_seconds)
            if not idle:
                continue
            self._write_checkpoint(session)
            with self._lock:
                # Re-check under the manager lock: a feed may have raced in.
                with session.cond:
                    if session.inflight == 0:
                        self._sessions.pop(name, None)
                        evicted.append(name)
        return evicted

    def session_names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def stats(self) -> dict:
        """Service-level counters (the server's ``stats`` op payload)."""
        with self._lock:
            live = len(self._sessions)
        return {
            "live_sessions": live,
            "sessions_opened": self.sessions_opened,
            "sessions_resumed": self.sessions_resumed,
            "chunks_executed": self.chunks_executed,
            "records_executed": self.records_executed,
            "backpressure_waits": self.backpressure_waits,
            "max_inflight_chunks": self.max_inflight_chunks,
            "tracing": self.spans.enabled,
            "spans_recorded": getattr(self.spans, "finished", 0),
        }

    def drain(self, checkpoint: bool = True) -> None:
        """Quiesce every session (and checkpoint them) — the SIGTERM path."""
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            self._quiesce(session)
            if checkpoint and self.checkpoint_dir is not None:
                self._write_checkpoint(session)

    def shutdown(self, checkpoint: bool = True) -> None:
        """Drain, then stop accepting work and release the pool."""
        self.drain(checkpoint=checkpoint)
        with self._lock:
            self._shutdown = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
