"""Structured JSON logging for the service: one logger, rate-limited.

The service logs through the standard :mod:`logging` tree under
``repro.service``; this module adds the production shape on top:

* :class:`JsonLogFormatter` — one JSON object per line (``ts``,
  ``level``, ``logger``, ``msg``, plus any ``extra={...}`` fields the
  call site attached), so log lines correlate with traces: pass
  ``extra={"trace_id": ...}`` and the line carries the id that also
  appears in the Chrome trace export.
* :class:`RateLimitFilter` — a token-bucket per ``(logger, level,
  template)`` key; repeated identical log sites are capped and the
  first post-suppression line carries a ``suppressed`` count, so a
  degraded detector firing every poll cannot flood the log.
* :func:`configure_service_logging` — the one call wiring both onto the
  ``repro.service`` logger (used by ``repro serve --log-json``).

Everything is clock-injectable and handler-local, so tests drive the
rate limiter deterministically and never mutate global logging state.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any, Callable, Dict, Optional

#: logrecord attributes that are plumbing, not payload.
_STANDARD_ATTRS = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None).__dict__) | {"message", "asctime",
                                             "taskName"}

SERVICE_LOGGER_NAME = "repro.service"

#: Default rate limit: per distinct log site, per interval.
DEFAULT_RATE_LIMIT = 10
DEFAULT_RATE_INTERVAL = 60.0


def record_extras(record: logging.LogRecord) -> Dict[str, Any]:
    """The caller-supplied ``extra`` fields of one log record."""
    return {key: value for key, value in record.__dict__.items()
            if key not in _STANDARD_ATTRS}


class JsonLogFormatter(logging.Formatter):
    """Render each record as one JSON object per line.

    Base fields: ``ts`` (unix seconds), ``level``, ``logger``, ``msg``
    (the formatted message).  Caller extras ride at the top level —
    reserved keys cannot be overridden.  Non-JSON-safe extra values are
    stringified rather than raised: a log line must never throw.
    """

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        super().__init__()
        self.clock = clock

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(self.clock(), 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record_extras(record).items():
            if key in payload:
                continue
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        try:
            return json.dumps(payload, separators=(",", ":"),
                              sort_keys=False)
        except (TypeError, ValueError):
            safe = {key: (value if isinstance(
                value, (str, int, float, bool, type(None))) else repr(value))
                for key, value in payload.items()}
            return json.dumps(safe, separators=(",", ":"))


class StaticFieldsFilter(logging.Filter):
    """Stamp fixed fields (e.g. ``worker_id``) onto every record.

    Engine worker processes install this so each of their JSON log lines
    names the worker it came from; together with the router's propagated
    trace ids, one grep follows a chunk across the process boundary.
    Caller-supplied ``extra`` fields win over the static defaults.
    """

    def __init__(self, fields: Dict[str, Any]) -> None:
        super().__init__()
        self.fields = dict(fields)

    def filter(self, record: logging.LogRecord) -> bool:
        for key, value in self.fields.items():
            if not hasattr(record, key):
                setattr(record, key, value)
        return True


class RateLimitFilter(logging.Filter):
    """Cap repeated identical log sites to N lines per interval.

    The key is ``(logger name, level, message template)`` — the
    *unformatted* ``record.msg`` — so one noisy site cannot starve
    others even when its formatted arguments vary.  When a window
    expires with suppressed lines, the next allowed record gains a
    ``suppressed`` extra carrying the dropped count.
    """

    def __init__(self, limit: int = DEFAULT_RATE_LIMIT,
                 interval: float = DEFAULT_RATE_INTERVAL,
                 clock: Callable[[], float] = time.monotonic) -> None:
        super().__init__()
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.limit = limit
        self.interval = interval
        self.clock = clock
        # key -> [window_start, emitted_in_window, suppressed_in_window]
        self._state: Dict[tuple, list] = {}

    def filter(self, record: logging.LogRecord) -> bool:
        key = (record.name, record.levelno, str(record.msg))
        now = self.clock()
        state = self._state.get(key)
        if state is None or now - state[0] >= self.interval:
            suppressed = state[2] if state is not None else 0
            self._state[key] = [now, 1, 0]
            if suppressed:
                record.suppressed = suppressed
            return True
        if state[1] < self.limit:
            state[1] += 1
            return True
        state[2] += 1
        return False


def configure_service_logging(
        level: int = logging.INFO,
        json_lines: bool = True,
        rate_limit: int = DEFAULT_RATE_LIMIT,
        rate_interval: float = DEFAULT_RATE_INTERVAL,
        stream: Optional[Any] = None,
        clock: Callable[[], float] = time.time,
        static_fields: Optional[Dict[str, Any]] = None) -> logging.Logger:
    """Wire the service logger: one handler, JSON lines, rate-limited.

    Replaces any handlers a previous call installed (idempotent — the
    test server starts/stops many times per process) and stops
    propagation so service lines are not double-printed by a root
    handler.  ``static_fields`` (e.g. ``{"worker_id": 2}``) are stamped
    onto every record — how sharded engine workers label their lines.
    Returns the configured logger.
    """
    logger = logging.getLogger(SERVICE_LOGGER_NAME)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    if json_lines:
        handler.setFormatter(JsonLogFormatter(clock=clock))
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s %(message)s"))
    if rate_limit:
        handler.addFilter(RateLimitFilter(limit=rate_limit,
                                          interval=rate_interval))
    if static_fields:
        handler.addFilter(StaticFieldsFilter(static_fields))
    logger.addHandler(handler)
    return logger
