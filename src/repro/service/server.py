"""Asyncio TCP front-end for the session manager.

One connection may multiplex requests for any number of sessions; frames
on a connection are processed strictly in order.  Blocking manager calls
(feed under backpressure, quiescing snapshots) run on the event loop's
default thread-pool executor, so a saturated session stalls only its own
connection — the stalled coroutine simply stops reading, and TCP flow
control pushes the backpressure all the way to the client.

Shutdown is graceful: :meth:`SimulationServer.drain` (wired to SIGTERM /
SIGINT by :func:`run_server`) stops accepting connections, lets in-flight
requests finish, checkpoints every open session, and only then returns.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
from typing import Dict, Optional, Set

from repro.config_io import from_dict as config_from_dict
from repro.config import SimConfig
from repro.errors import ReproError, ServiceError
from repro.obs.health import HealthConfig
from repro.obs.trace_spans import (SPAN_DECODE, SPAN_ENCODE, new_id, now_us)
from repro.service import protocol
from repro.service.logging import configure_service_logging
from repro.service.session import SessionManager

logger = logging.getLogger("repro.service")

#: Ops whose handler may block on simulation work (run in the executor).
_DRAIN_GRACE_SECONDS = 30.0


class SimulationServer:
    """The streaming-simulation TCP server (one per process)."""

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1",
                 port: int = 0,
                 metrics_port: Optional[int] = None,
                 uds_path: Optional[str] = None) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        #: When set, listen on this unix-domain socket path instead of
        #: TCP — how sharded engine workers expose themselves to the
        #: router (same framing, no port allocation).
        self.uds_path = uds_path
        #: When set, a plain-HTTP listener on this port answers ``GET
        #: /metrics`` with the Prometheus text exposition (0 = ephemeral).
        self.metrics_port = metrics_port
        self._server: Optional[asyncio.base_events.Server] = None
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._drain_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self.uds_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.uds_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port)
            self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_request, self.host, self.metrics_port)
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1])
            logger.info("metrics on http://%s:%d/metrics",
                        self.host, self.metrics_port)
        if self.uds_path is not None:
            logger.info("serving on unix socket %s", self.uds_path)
        else:
            logger.info("serving on %s:%d", self.host, self.port)

    @property
    def address(self) -> tuple:
        if self._server is None:
            raise ServiceError("server not started")
        if self.uds_path is not None:
            return (self.uds_path,)
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, checkpoint: bool = True,
                    grace_seconds: float = _DRAIN_GRACE_SECONDS) -> None:
        """Stop accepting, finish in-flight requests, checkpoint, stop.

        Idempotent: concurrent callers (the ``shutdown`` op, the signal
        handler, a test fixture) all await the same underlying drain.
        """
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(
                self._drain_impl(checkpoint, grace_seconds))
        await asyncio.shield(self._drain_task)

    async def _drain_impl(self, checkpoint: bool,
                          grace_seconds: float) -> None:
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            done, pending = await asyncio.wait(
                self._connections, timeout=grace_seconds)
            for task in pending:
                task.cancel()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.manager.drain, checkpoint)
        logger.info("drained: %s", self.manager.stats())

    async def _handle_metrics_request(self, reader: asyncio.StreamReader,
                                      writer: asyncio.StreamWriter) -> None:
        """Minimal HTTP/1.0 responder for Prometheus scrapes + health.

        ``GET /metrics`` (one request per connection) gets the text
        exposition, ``GET /healthz`` the health engine's JSON report
        (200 when ok, 503 when degraded — probe-friendly); other paths
        get 404.  No keep-alive, no chunking — scrapers and probes speak
        exactly this much HTTP.
        """
        try:
            request_line = await asyncio.wait_for(reader.readline(),
                                                  timeout=10.0)
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else ""
            # Drain the remaining request headers.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            loop = asyncio.get_running_loop()
            if path.split("?")[0] == "/metrics":
                text = await loop.run_in_executor(
                    None, self.manager.metrics_text)
                body = text.encode("utf-8")
                status = "200 OK"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif path.split("?")[0] == "/healthz":
                report = await loop.run_in_executor(
                    None, self.manager.health_report)
                body = (json.dumps(protocol.health_to_dict(report),
                                   separators=(",", ":")) + "\n"
                        ).encode("utf-8")
                status = "200 OK" if report.ok else "503 Service Unavailable"
                content_type = "application/json; charset=utf-8"
                if not report.ok:
                    logger.warning(
                        "health degraded", extra={
                            "status": report.status,
                            "detectors": [verdict.detector
                                          for verdict in report.verdicts
                                          if not verdict.ok]})
            else:
                body = b"not found\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            writer.write(
                (f"HTTP/1.0 {status}\r\n"
                 f"Content-Type: {content_type}\r\n"
                 f"Content-Length: {len(body)}\r\n"
                 f"Connection: close\r\n\r\n").encode("latin-1") + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------------
    # Frame loop
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        spans = self.manager.spans
        try:
            while True:
                try:
                    prefix = await reader.readexactly(protocol.FRAME_PREFIX.size)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                frame_start = now_us() if spans.enabled else 0
                try:
                    header_len, payload_len = protocol.parse_prefix(prefix)
                    header = protocol.decode_header(
                        await reader.readexactly(header_len))
                    payload = (await reader.readexactly(payload_len)
                               if payload_len else b"")
                except asyncio.IncompleteReadError:
                    break
                except ServiceError as exc:
                    # Framing is broken — answer once, then hang up.
                    writer.write(protocol.encode_frame(
                        protocol.error_response(str(exc), "protocol")))
                    await writer.drain()
                    break
                op = header.get("op")
                response = None
                trace_id = client_span = request_span_id = None
                if spans.enabled:
                    try:
                        context = protocol.trace_context(header)
                    except ServiceError as exc:
                        response = protocol.error_response(str(exc),
                                                           "protocol")
                        context = None
                    if response is None:
                        # The request span's ids are minted up front so the
                        # decode/encode stage spans (and the manager's
                        # fifo-wait / feed-chunk spans, via the header's
                        # internal trace context) can parent to it before
                        # the request span itself is recorded.
                        client_span = context["span_id"] if context else None
                        trace_id = (context["trace_id"] if context
                                    else new_id())
                        request_span_id = new_id()
                        header["_trace"] = {"trace_id": trace_id,
                                            "span_id": request_span_id}
                        spans.record(
                            SPAN_DECODE, frame_start,
                            now_us() - frame_start, trace_id=trace_id,
                            parent_id=request_span_id, op=op)
                if response is None:
                    response = await self._dispatch(header, payload)
                encode_start = now_us() if spans.enabled else 0
                writer.write(protocol.encode_frame(response))
                await writer.drain()
                if request_span_id is not None:
                    finish = now_us()
                    spans.record(SPAN_ENCODE, encode_start,
                                 finish - encode_start, trace_id=trace_id,
                                 parent_id=request_span_id, op=op)
                    spans.record(
                        f"request.{op}", frame_start, finish - frame_start,
                        trace_id=trace_id, parent_id=client_span,
                        span_id=request_span_id, op=op,
                        session=header.get("session"),
                        ok=bool(response.get("ok", False)))
                if op == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Drain timed out and cancelled this handler; exit quietly so
            # the streams connection_made callback doesn't log the
            # cancellation as an unhandled exception.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, header: dict, payload: bytes) -> dict:
        op = header.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "open":
                return await self._op_open(header)
            if op == "feed":
                return await self._op_feed(header, payload)
            if op == "snapshot":
                return await self._op_snapshot(header)
            if op == "checkpoint":
                return await self._op_checkpoint(header)
            if op == "close":
                return await self._op_close(header)
            if op == "evict":
                return await self._op_evict(header)
            if op == "timeline":
                return await self._op_timeline(header)
            if op == "lineage":
                return await self._op_lineage(header)
            if op == "metrics":
                loop = asyncio.get_running_loop()
                text = await loop.run_in_executor(
                    None, self.manager.metrics_text)
                return {"ok": True, "text": text}
            if op == "stats":
                return {"ok": True, "stats": self.manager.stats(),
                        "sessions": self.manager.session_names()}
            if op == "spans":
                return self._op_spans(header)
            if op == "health":
                loop = asyncio.get_running_loop()
                report = await loop.run_in_executor(
                    None, self.manager.health_report)
                if not report.ok:
                    logger.warning(
                        "health degraded", extra={
                            "status": report.status,
                            "detectors": [verdict.detector
                                          for verdict in report.verdicts
                                          if not verdict.ok]})
                return {"ok": True,
                        "health": protocol.health_to_dict(report)}
            if op == "shutdown":
                asyncio.get_running_loop().call_soon(
                    asyncio.ensure_future, self.drain())
                return {"ok": True, "draining": True}
            return protocol.error_response(f"unknown op {op!r}", "protocol")
        except ReproError as exc:
            return protocol.error_response(str(exc), type(exc).__name__)
        except Exception as exc:  # never let one request kill the server
            logger.exception("unhandled error in op %r", op)
            return protocol.error_response(
                f"internal error: {type(exc).__name__}: {exc}", "internal")

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    @staticmethod
    def _session_name(header: dict) -> str:
        name = header.get("session")
        if not isinstance(name, str) or not name:
            raise ServiceError("request is missing a session name")
        return name

    async def _op_open(self, header: dict) -> dict:
        name = self._session_name(header)
        prefetcher = header.get("prefetcher")
        if not isinstance(prefetcher, str):
            raise ServiceError("open requires a prefetcher name")
        config = None
        if header.get("config") is not None:
            config = config_from_dict(SimConfig, header["config"])
        loop = asyncio.get_running_loop()
        epoch_records = header.get("epoch_records")
        if epoch_records is not None and (not isinstance(epoch_records, int)
                                          or epoch_records < 1):
            raise ServiceError("epoch_records must be a positive integer")
        snapshot = await loop.run_in_executor(
            None, lambda: self.manager.open(
                name, prefetcher,
                workload=header.get("workload", "stream"),
                config=config,
                warmup_records=header.get("warmup_records"),
                resume=bool(header.get("resume", False)),
                epoch_records=epoch_records,
                lineage=bool(header.get("lineage", False))))
        logger.info("session opened", extra={
            "session": name, "prefetcher": prefetcher,
            "trace_id": (header.get("_trace") or {}).get("trace_id")})
        return {"ok": True, "snapshot": protocol.snapshot_to_dict(snapshot)}

    def _op_spans(self, header: dict) -> dict:
        spans = self.manager.spans
        if not spans.enabled:
            raise ServiceError(
                "server started without tracing; no spans are recorded "
                "(start with --trace)")
        records = spans.spans(clear=bool(header.get("clear", False)))
        return {"ok": True,
                "spans": protocol.spans_to_list(records),
                "summary": spans.summary()}

    async def _op_feed(self, header: dict, payload: bytes) -> dict:
        name = self._session_name(header)
        count = header.get("count")
        if not isinstance(count, int):
            raise ServiceError("feed requires an integer record count")
        buffer = protocol.decode_buffer(count, payload)
        # The internal context (set by the frame loop when tracing is on)
        # parents the manager's fifo-wait/feed-chunk spans to this request.
        trace = header.get("_trace")
        loop = asyncio.get_running_loop()
        # feed() blocks while the session is saturated — run it off-loop so
        # only this connection stalls; the ack covers *acceptance*, chunk
        # application is pipelined (snapshot/close synchronise).
        await loop.run_in_executor(
            None, lambda: self.manager.feed(name, buffer, trace=trace))
        return {"ok": True, "accepted": count}

    async def _op_snapshot(self, header: dict) -> dict:
        name = self._session_name(header)
        wait = bool(header.get("wait", True))
        loop = asyncio.get_running_loop()
        snapshot = await loop.run_in_executor(
            None, lambda: self.manager.snapshot(name, wait=wait))
        return {"ok": True, "snapshot": protocol.snapshot_to_dict(snapshot)}

    async def _op_timeline(self, header: dict) -> dict:
        name = self._session_name(header)
        include_partial = bool(header.get("include_partial", True))
        events = bool(header.get("events", False))
        wait = bool(header.get("wait", True))
        loop = asyncio.get_running_loop()
        epochs, retained = await loop.run_in_executor(
            None, lambda: self.manager.timeline(
                name, include_partial=include_partial, events=events,
                wait=wait))
        response = {"ok": True,
                    "epochs": protocol.epochs_to_list(epochs)}
        if retained is not None:
            response["events"] = protocol.events_to_list(retained)
        return response

    async def _op_lineage(self, header: dict) -> dict:
        name = self._session_name(header)
        events = bool(header.get("events", False))
        wait = bool(header.get("wait", True))
        loop = asyncio.get_running_loop()
        summary = await loop.run_in_executor(
            None, lambda: self.manager.lineage(
                name, events=events, wait=wait))
        return {"ok": True, "lineage": summary}

    async def _op_checkpoint(self, header: dict) -> dict:
        name = self._session_name(header)
        loop = asyncio.get_running_loop()
        path = await loop.run_in_executor(None, self.manager.checkpoint, name)
        return {"ok": True, "path": str(path)}

    async def _op_close(self, header: dict) -> dict:
        name = self._session_name(header)
        delete = bool(header.get("delete_checkpoint", True))
        loop = asyncio.get_running_loop()
        snapshot = await loop.run_in_executor(
            None, lambda: self.manager.close(name, delete_checkpoint=delete))
        logger.info("session closed", extra={
            "session": name, "records_fed": snapshot.records_fed,
            "trace_id": (header.get("_trace") or {}).get("trace_id")})
        return {"ok": True, "snapshot": protocol.snapshot_to_dict(snapshot)}

    async def _op_evict(self, header: dict) -> dict:
        max_idle = float(header.get("max_idle_seconds", 0.0))
        loop = asyncio.get_running_loop()
        evicted = await loop.run_in_executor(
            None, self.manager.evict_idle, max_idle)
        return {"ok": True, "evicted": evicted}


async def _serve(server: SimulationServer,
                 ready: Optional["asyncio.Event"] = None) -> None:
    """Run until SIGTERM/SIGINT, then drain gracefully."""
    await server.start()
    if ready is not None:
        ready.set()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or unsupported platform
    try:
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        await asyncio.wait({serve_task, stop_task},
                           return_when=asyncio.FIRST_COMPLETED)
        serve_task.cancel()
        try:
            await serve_task
        except (asyncio.CancelledError, Exception):
            pass
        await server.drain()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


def run_server(host: str = "127.0.0.1", port: int = 8642,
               checkpoint_dir: Optional[str] = None,
               max_inflight_chunks: int = 4, workers: int = 4,
               parallelism: str = "serial",
               checkpoint_interval: int = 0,
               metrics_port: Optional[int] = None,
               tracing: bool = False,
               log_json: bool = False,
               health_config: Optional[HealthConfig] = None,
               uds_path: Optional[str] = None,
               worker_id: Optional[int] = None) -> Dict[str, int]:
    """Blocking entry point for ``python -m repro serve`` (one process).

    ``tracing`` enables the span recorder (the ``spans`` op and Chrome
    trace export); ``log_json`` switches the service logger to
    rate-limited one-JSON-object-per-line output.  ``uds_path`` listens
    on a unix-domain socket instead of TCP, and ``worker_id`` stamps
    every structured log line — both set when this process is one engine
    worker of a sharded cluster (:mod:`repro.service.cluster`).  Returns
    the manager's final stats once the server has drained
    (SIGTERM/SIGINT initiate the drain; KeyboardInterrupt propagates to
    the CLI, which exits 130).
    """
    if log_json:
        static = ({"worker_id": worker_id}
                  if worker_id is not None else None)
        configure_service_logging(json_lines=True, static_fields=static)
    manager = SessionManager(
        checkpoint_dir=checkpoint_dir,
        max_inflight_chunks=max_inflight_chunks,
        workers=workers,
        parallelism=parallelism,
        checkpoint_interval=checkpoint_interval,
        tracing=tracing,
        health_config=health_config,
    )
    server = SimulationServer(manager, host=host, port=port,
                              metrics_port=metrics_port,
                              uds_path=uds_path)
    try:
        asyncio.run(_serve(server))
    finally:
        manager.shutdown(checkpoint=checkpoint_dir is not None)
    return manager.stats()
