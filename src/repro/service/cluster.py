"""Multi-process sharded service: asyncio router + engine worker fleet.

The single-process server multiplexes every session over one GIL; this
module removes that wall.  ``repro serve --workers N`` becomes:

* **N engine workers** — each a spawned process running the unmodified
  :class:`~repro.service.server.SimulationServer` +
  :class:`~repro.service.session.SessionManager` stack on a unix-domain
  socket (same length-prefixed framing as TCP, no port allocation).
* **One router** — a lightweight asyncio front-end that terminates
  client TCP connections, places sessions onto workers by **consistent
  hash** over session names (:class:`HashRing`), and proxies every
  session op to the owning worker.  Each client connection gets its own
  upstream connection per worker, so a session blocked on backpressure
  stalls only its own client — exactly the single-process semantics.

Sessions **migrate between workers through the existing versioned
checkpoints**: the router closes the session on the source worker with
``delete_checkpoint=False`` (quiesce → final atomic snapshot on the
*shared* checkpoint directory), reopens it on the target with
``resume=True`` (fingerprint-validated restore), and atomically flips
the routing entry — feeds arriving mid-migration wait on the session's
route lock and land on the new owner.  The same mechanism powers live
rebalancing on worker join/leave (``scale`` op) and lets a crashed
worker's sessions resume from their last checkpoint on the ring
successor.

Observability spans the fleet: ``/metrics`` merges every worker's
Prometheus exposition under single ``# HELP``/``# TYPE`` headers with a
``worker`` label per sample, ``/healthz`` composes per-worker health
verdicts (worst status wins), and with ``--trace`` each proxied request
records a ``router.forward`` span whose context propagates to the
worker — one causal chain per chunk across the process boundary.

Because every engine runs the unmodified simulator and migration rides
the checkpoint path whose bit-identity ``tests/test_service_state.py``
already pins, a served session — migrations included — stays
bit-identical to offline ``simulate()`` (``tests/test_service_cluster.py``).
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import json
import logging
import multiprocessing
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError, ServiceError, SessionNotFoundError
from repro.obs.health import HealthConfig, HealthReport
from repro.obs.trace_spans import (NULL_SPANS, SPAN_ROUTER_FORWARD,
                                   SPAN_ROUTER_MIGRATE, SpanRecorder, new_id)
from repro.service import protocol
from repro.service.logging import configure_service_logging

logger = logging.getLogger("repro.service.cluster")

#: Session-scoped ops the router proxies to the owning worker.
SESSION_OPS = frozenset(
    {"open", "feed", "snapshot", "checkpoint", "close", "timeline",
     "lineage"})
#: Default virtual nodes per worker on the hash ring.
RING_REPLICAS = 64
_DRAIN_GRACE_SECONDS = 30.0
_WORKER_START_TIMEOUT = 120.0
_WORKER_JOIN_TIMEOUT = 60.0

_CONNECTION_ERRORS = (ConnectionError, BrokenPipeError, EOFError,
                      asyncio.IncompleteReadError, OSError)


# ----------------------------------------------------------------------
# Consistent-hash placement
# ----------------------------------------------------------------------
def _ring_hash(key: str) -> int:
    """A stable 64-bit point on the ring (never Python's salted hash)."""
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8],
                          "big")


class HashRing:
    """Consistent hashing of session names onto worker ids.

    Each worker contributes ``replicas`` virtual points; a key is owned
    by the first point clockwise from its own hash.  The property the
    migration layer relies on (pinned by a hypothesis suite): removing a
    worker only moves the keys it owned, and adding a worker only moves
    keys *to* the new worker — placement of everything else is stable.
    """

    def __init__(self, replicas: int = RING_REPLICAS) -> None:
        if replicas < 1:
            raise ServiceError(f"ring replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[Tuple[int, int]] = []  # sorted (point, worker_id)
        self._workers: Set[int] = set()

    def add(self, worker_id: int) -> None:
        if worker_id in self._workers:
            return
        self._workers.add(worker_id)
        for replica in range(self.replicas):
            point = _ring_hash(f"worker-{worker_id}:{replica}")
            bisect.insort(self._points, (point, worker_id))

    def remove(self, worker_id: int) -> None:
        if worker_id not in self._workers:
            return
        self._workers.discard(worker_id)
        self._points = [entry for entry in self._points
                        if entry[1] != worker_id]

    def owner(self, key: str) -> int:
        if not self._points:
            raise ServiceError("hash ring is empty — no workers")
        point = _ring_hash(key)
        index = bisect.bisect_left(self._points, (point, -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def workers(self) -> Set[int]:
        return set(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: int) -> bool:
        return worker_id in self._workers


# ----------------------------------------------------------------------
# Worker processes and connections
# ----------------------------------------------------------------------
def _worker_entry(spec: dict) -> None:
    """Engine worker main — one full service stack on a unix socket.

    Runs in a spawned process; ``spec`` is a plain picklable dict.  The
    worker drains (quiesce + checkpoint every open session to the shared
    directory) on SIGTERM or a ``shutdown`` op, then exits 0.
    """
    from repro.service.server import run_server

    run_server(
        checkpoint_dir=spec["checkpoint_dir"],
        max_inflight_chunks=spec["max_inflight_chunks"],
        workers=spec["worker_threads"],
        parallelism=spec["parallelism"],
        checkpoint_interval=spec["checkpoint_interval"],
        tracing=spec["tracing"],
        log_json=spec["log_json"],
        health_config=spec["health_config"],
        uds_path=spec["uds_path"],
        worker_id=spec["worker_id"],
    )


class WorkerConnection:
    """One framed request/response pipe to an engine worker.

    Requests are serialised under a lock (the protocol is strictly
    ordered per connection); concurrency comes from holding many
    connections, not from interleaving frames on one.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def open(cls, uds_path: str) -> "WorkerConnection":
        reader, writer = await asyncio.open_unix_connection(uds_path)
        return cls(reader, writer)

    async def request(self, header: dict, payload: bytes = b"") -> dict:
        async with self._lock:
            self._writer.write(protocol.encode_frame(header, payload))
            await self._writer.drain()
            prefix = await self._reader.readexactly(protocol.FRAME_PREFIX.size)
            header_len, payload_len = protocol.parse_prefix(prefix)
            response = protocol.decode_header(
                await self._reader.readexactly(header_len))
            if payload_len:
                await self._reader.readexactly(payload_len)
            return response

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except _CONNECTION_ERRORS:
            pass


@dataclass
class WorkerHandle:
    """The router's view of one engine worker process."""

    worker_id: int
    uds_path: str
    process: "multiprocessing.process.BaseProcess"
    #: Router control connection — migrations, scale, drain.
    ops: Optional[WorkerConnection] = None
    #: Observability fan-out connection — metrics/health/spans/stats;
    #: separate from ``ops`` so a long quiesce during migration never
    #: blocks a ``/healthz`` probe.
    obs: Optional[WorkerConnection] = None
    alive: bool = True


@dataclass
class _Route:
    """Routing entry for one session: owner + migration serialisation."""

    worker_id: int
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    migrations: int = 0


# ----------------------------------------------------------------------
# Fleet-wide observability merges
# ----------------------------------------------------------------------
def _inject_label(sample_line: str, label: str) -> str:
    """Add ``label`` (e.g. ``worker="2"``) to one exposition sample."""
    brace = sample_line.find("{")
    if brace != -1:
        close = sample_line.rfind("}")
        return f"{sample_line[:close]},{label}{sample_line[close:]}"
    space = sample_line.find(" ")
    return f"{sample_line[:space]}{{{label}}}{sample_line[space:]}"


def merge_worker_metrics(texts: Dict[int, str],
                         router_text: str = "") -> str:
    """Merge per-worker Prometheus expositions into one valid page.

    Every sample gains a ``worker="<id>"`` label; ``# HELP``/``# TYPE``
    headers are emitted once per metric (first-seen wins — all workers
    run the same build, so the headers are identical).  ``router_text``
    contributes router-level samples (``cluster_*``) without a worker
    label.
    """
    groups: Dict[str, dict] = {}

    def absorb(text: str, label: str) -> None:
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                metric = line.split(" ", 3)[2]
                entry = groups.setdefault(
                    metric, {"help": None, "type": None, "samples": []})
                kind = "help" if line.startswith("# HELP ") else "type"
                if entry[kind] is None:
                    entry[kind] = line
            else:
                metric = line.split("{", 1)[0].split(" ", 1)[0]
                entry = groups.setdefault(
                    metric, {"help": None, "type": None, "samples": []})
                entry["samples"].append(
                    _inject_label(line, label) if label else line)

    for worker_id in sorted(texts):
        absorb(texts[worker_id], f'worker="{worker_id}"')
    if router_text:
        absorb(router_text, "")
    lines: List[str] = []
    for entry in groups.values():
        if entry["help"] is not None:
            lines.append(entry["help"])
        if entry["type"] is not None:
            lines.append(entry["type"])
        lines.extend(entry["samples"])
    return "\n".join(lines) + "\n"


def merge_span_summaries(
        summaries: List[Dict[str, Dict[str, float]]]
) -> Dict[str, Dict[str, float]]:
    """Combine per-process span summaries into one per-name table.

    Counts sum and means combine count-weighted (exact); the p50/p95/p99
    columns take the worst (max) across processes — an upper bound, the
    conservative direction for latency monitoring — since the underlying
    histograms live in separate processes.
    """
    merged: Dict[str, Dict[str, float]] = {}
    for summary in summaries:
        for name, entry in summary.items():
            slot = merged.get(name)
            if slot is None:
                merged[name] = dict(entry)
                continue
            total = slot["count"] + entry["count"]
            if total:
                slot["mean_us"] = (slot["mean_us"] * slot["count"]
                                   + entry["mean_us"] * entry["count"]) / total
            slot["count"] = total
            for key in ("max_us", "p50_us", "p95_us", "p99_us"):
                slot[key] = max(slot[key], entry[key])
    return merged


def compose_health(reports: Dict[int, HealthReport],
                   unreachable: List[int]) -> HealthReport:
    """One fleet verdict from per-worker reports: worst status wins.

    Verdict details are prefixed with the worker they came from, so a
    degraded ``/healthz`` names the offending process; unreachable
    workers degrade the fleet outright.
    """
    status_ok = not unreachable
    verdicts = []
    sessions: Dict[str, str] = {}
    for worker_id in sorted(reports):
        report = reports[worker_id]
        if not report.ok:
            status_ok = False
        for verdict in report.verdicts:
            detail = (f"worker {worker_id}: {verdict.detail}"
                      if verdict.detail else f"worker {worker_id}")
            verdicts.append(dataclasses.replace(verdict, detail=detail))
        sessions.update(report.sessions)
    return HealthReport(status="ok" if status_ok else "degraded",
                        verdicts=verdicts, sessions=sessions)


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------
class ClusterRouter:
    """Asyncio front-end placing sessions onto engine worker processes.

    Speaks the existing client protocol on TCP; every session op is
    proxied to the session's owning worker over a unix socket using the
    same framing.  See the module docstring for the architecture and
    :meth:`migrate` for the checkpoint-based migration state machine.
    """

    def __init__(self, workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0,
                 metrics_port: Optional[int] = None,
                 checkpoint_dir: Optional[str] = None,
                 max_inflight_chunks: int = 4,
                 worker_threads: int = 4,
                 parallelism: str = "serial",
                 checkpoint_interval: int = 0,
                 tracing: bool = False,
                 log_json: bool = False,
                 health_config: Optional[HealthConfig] = None,
                 ring_replicas: int = RING_REPLICAS) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.requested_workers = workers
        self.host = host
        self.port = port
        self.metrics_port = metrics_port
        self.checkpoint_dir = checkpoint_dir
        self.max_inflight_chunks = max_inflight_chunks
        self.worker_threads = worker_threads
        self.parallelism = parallelism
        self.checkpoint_interval = checkpoint_interval
        self.tracing = tracing
        self.log_json = log_json
        self.health_config = health_config
        self.spans = SpanRecorder() if tracing else NULL_SPANS
        self.ring = HashRing(ring_replicas)
        self.migrations = 0
        self.workers_spawned = 0
        self._workers: Dict[int, WorkerHandle] = {}
        self._routes: Dict[str, _Route] = {}
        self._next_worker_id = 0
        self._runtime_dir: Optional[str] = None
        self._owns_runtime_dir = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._drain_task: Optional[asyncio.Task] = None
        # Spawn (not fork): the router thread already runs an event loop
        # and the workers start their own; forking across either is UB.
        self._mp = multiprocessing.get_context("spawn")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._runtime_dir is None:
            self._runtime_dir = tempfile.mkdtemp(prefix="repro-cluster-")
            self._owns_runtime_dir = True
        if self.checkpoint_dir is None:
            # Migration requires a directory every worker can reach.
            self.checkpoint_dir = os.path.join(self._runtime_dir,
                                               "checkpoints")
        Path(self.checkpoint_dir).mkdir(parents=True, exist_ok=True)
        for _ in range(self.requested_workers):
            await self._spawn_worker()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_request, self.host, self.metrics_port)
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1])
            logger.info("cluster metrics on http://%s:%d/metrics",
                        self.host, self.metrics_port)
        logger.info("router serving on %s:%d", self.host, self.port,
                    extra={"workers": sorted(self._workers)})

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, checkpoint: bool = True,
                    grace_seconds: float = _DRAIN_GRACE_SECONDS) -> None:
        """Stop accepting, drain every worker (checkpointing), stop.

        Idempotent like the single-process server's drain; ``checkpoint``
        is accepted for interface parity (workers always checkpoint on
        drain — the cluster runs them with a shared checkpoint dir).
        """
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(
                self._drain_impl(grace_seconds))
        await asyncio.shield(self._drain_task)

    async def _drain_impl(self, grace_seconds: float) -> None:
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            done, pending = await asyncio.wait(
                self._connections, timeout=grace_seconds)
            for task in pending:
                task.cancel()
        loop = asyncio.get_running_loop()
        for worker_id in sorted(list(self._workers)):
            handle = self._workers.pop(worker_id, None)
            if handle is None:
                continue
            self.ring.remove(worker_id)
            try:
                await handle.ops.request({"op": "shutdown"})
            except _CONNECTION_ERRORS:
                pass
            for conn in (handle.ops, handle.obs):
                if conn is not None:
                    await conn.close()
            await loop.run_in_executor(None, handle.process.join,
                                       _WORKER_JOIN_TIMEOUT)
            if handle.process.is_alive():
                handle.process.terminate()
                await loop.run_in_executor(None, handle.process.join, 5)
            handle.alive = False
            logger.info("worker drained", extra={
                "worker_id": worker_id,
                "exitcode": handle.process.exitcode})
        logger.info("cluster drained", extra={
            "migrations": self.migrations,
            "sessions_routed": len(self._routes)})

    def cleanup(self) -> None:
        """Remove the runtime dir (sockets; checkpoints if we made it)."""
        for handle in self._workers.values():
            if handle.process.is_alive():
                handle.process.terminate()
        if self._owns_runtime_dir and self._runtime_dir is not None:
            shutil.rmtree(self._runtime_dir, ignore_errors=True)
            self._runtime_dir = None

    def summary(self) -> dict:
        """Router-level counters (returned by ``run_cluster``)."""
        return {
            "workers_spawned": self.workers_spawned,
            "workers_live": len(self._workers),
            "sessions_routed": len(self._routes),
            "migrations": self.migrations,
            "tracing": self.spans.enabled,
        }

    # ------------------------------------------------------------------
    # Worker fleet
    # ------------------------------------------------------------------
    async def _spawn_worker(self) -> WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        uds_path = os.path.join(self._runtime_dir, f"worker-{worker_id}.sock")
        spec = {
            "worker_id": worker_id,
            "uds_path": uds_path,
            "checkpoint_dir": self.checkpoint_dir,
            "max_inflight_chunks": self.max_inflight_chunks,
            "worker_threads": self.worker_threads,
            "parallelism": self.parallelism,
            "checkpoint_interval": self.checkpoint_interval,
            "tracing": self.tracing,
            "log_json": self.log_json,
            "health_config": self.health_config,
        }
        process = self._mp.Process(target=_worker_entry, args=(spec,),
                                   name=f"repro-worker-{worker_id}")
        process.start()
        handle = WorkerHandle(worker_id, uds_path, process)
        try:
            await self._wait_ready(handle)
            handle.ops = await WorkerConnection.open(uds_path)
            handle.obs = await WorkerConnection.open(uds_path)
        except BaseException:
            if process.is_alive():
                process.terminate()
            raise
        self._workers[worker_id] = handle
        self.ring.add(worker_id)
        self.workers_spawned += 1
        logger.info("worker joined", extra={"worker_id": worker_id,
                                            "pid": process.pid})
        return handle

    async def _wait_ready(self, handle: WorkerHandle,
                          timeout: float = _WORKER_START_TIMEOUT) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            if handle.process.exitcode is not None:
                raise ServiceError(
                    f"worker {handle.worker_id} exited during startup "
                    f"(exit {handle.process.exitcode})")
            try:
                probe = await WorkerConnection.open(handle.uds_path)
                await probe.close()
                return
            except _CONNECTION_ERRORS:
                if loop.time() > deadline:
                    raise ServiceError(
                        f"worker {handle.worker_id} did not become ready "
                        f"within {timeout}s")
                await asyncio.sleep(0.05)

    def _mark_dead(self, handle: WorkerHandle, reason: str) -> None:
        """Remove a crashed worker; its sessions re-place lazily.

        The next request for an affected session lands on the ring
        successor, whose manager transparently restores the last
        checkpoint from the shared directory — the crash loses at most
        the chunks fed since that checkpoint (``--checkpoint-interval``
        bounds the window).
        """
        if not handle.alive:
            return
        handle.alive = False
        self.ring.remove(handle.worker_id)
        self._workers.pop(handle.worker_id, None)
        logger.warning("worker lost", extra={
            "worker_id": handle.worker_id, "reason": reason})

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, name: str) -> _Route:
        # No lock: routes are only touched on the event loop and there
        # is no await between the miss check and the insert.
        route = self._routes.get(name)
        if route is None:
            route = self._routes[name] = _Route(self.ring.owner(name))
        return route

    async def _forward(self, conn: WorkerConnection, handle: WorkerHandle,
                       header: dict, payload: bytes = b"") -> dict:
        """Proxy one request, recording the router→worker hop span."""
        span = None
        if self.spans.enabled:
            context = header.get("trace") or {}
            span = self.spans.begin(
                SPAN_ROUTER_FORWARD,
                trace_id=context.get("trace_id") or new_id(),
                parent_id=context.get("span_id"), detached=True,
                op=header.get("op"), session=header.get("session"),
                worker=handle.worker_id)
            header = {**header, "trace": {"trace_id": span.trace_id,
                                          "span_id": span.span_id}}
        try:
            response = await conn.request(header, payload)
        except _CONNECTION_ERRORS as exc:
            self._mark_dead(handle, f"{type(exc).__name__}: {exc}")
            response = protocol.error_response(
                f"worker {handle.worker_id} connection failed: {exc}",
                "worker")
        if span is not None:
            self.spans.end(span, ok=bool(response.get("ok", False)))
        return response

    async def _upstream(self, upstreams: Dict[int, WorkerConnection],
                        handle: WorkerHandle) -> WorkerConnection:
        conn = upstreams.get(handle.worker_id)
        if conn is None:
            conn = await WorkerConnection.open(handle.uds_path)
            upstreams[handle.worker_id] = conn
        return conn

    async def _proxy_session_op(self, header: dict, payload: bytes,
                                upstreams: Dict[int, WorkerConnection]
                                ) -> dict:
        name = header.get("session")
        if not isinstance(name, str) or not name:
            raise ServiceError("request is missing a session name")
        route = self._route(name)
        async with route.lock:
            handle = self._workers.get(route.worker_id)
            if handle is None or not handle.alive:
                # Owner is gone (crash or scale-down race): re-place on
                # the ring; the new worker transparently restores the
                # session's last checkpoint from the shared directory.
                route.worker_id = self.ring.owner(name)
                handle = self._workers.get(route.worker_id)
                if handle is None:
                    raise ServiceError("no live workers")
            conn = await self._upstream(upstreams, handle)
            response = await self._forward(conn, handle, header, payload)
        if header.get("op") == "close" and response.get("ok"):
            self._routes.pop(name, None)
        return response

    # ------------------------------------------------------------------
    # Migration and rebalancing
    # ------------------------------------------------------------------
    async def migrate(self, name: str,
                      target_id: Optional[int] = None) -> dict:
        """Move one session to another worker via its checkpoint.

        State machine (all under the session's route lock, so feeds
        arriving mid-migration queue and land on the new owner):

        1. ``close(delete_checkpoint=False)`` on the source — quiesces
           the chunk FIFO, writes a final atomic checkpoint to the
           shared directory, forgets the session.
        2. ``open(resume=True)`` on the target — fingerprint-validated
           restore (:func:`~repro.service.checkpoint.validate_restore`).
        3. Flip the routing entry.

        If step 2 fails the route is dropped instead: the session's
        checkpoint survives, and the next request transparently restores
        it on the ring owner.
        """
        route = self._routes.get(name)
        if route is None:
            raise SessionNotFoundError(name)
        async with route.lock:
            source = self._workers.get(route.worker_id)
            if source is None:
                raise ServiceError(
                    f"session {name!r} has no live owner to migrate from")
            if target_id is None:
                others = [wid for wid in sorted(self._workers)
                          if wid != source.worker_id]
                if not others:
                    raise ServiceError(
                        "no other live worker to migrate to")
                target_id = others[self.migrations % len(others)]
            if target_id == source.worker_id:
                return {"ok": True, "session": name, "worker": target_id,
                        "migrated": False}
            target = self._workers.get(target_id)
            if target is None:
                raise ServiceError(f"no live worker {target_id}")
            span = (self.spans.begin(SPAN_ROUTER_MIGRATE, detached=True,
                                     session=name,
                                     source=source.worker_id,
                                     target=target_id)
                    if self.spans.enabled else None)
            closed = await self._forward(
                source.ops, source,
                {"op": "close", "session": name,
                 "delete_checkpoint": False})
            if not closed.get("ok"):
                if span is not None:
                    self.spans.end(span, ok=False, stage="close")
                return closed
            prefetcher = closed["snapshot"]["prefetcher"]
            opened = await self._forward(
                target.ops, target,
                {"op": "open", "session": name, "prefetcher": prefetcher,
                 "resume": True})
            if not opened.get("ok"):
                # The checkpoint survives; let the next request restore
                # it wherever the ring points.
                self._routes.pop(name, None)
                if span is not None:
                    self.spans.end(span, ok=False, stage="open")
                logger.warning("migration failed", extra={
                    "session": name, "from_worker": source.worker_id,
                    "to_worker": target_id,
                    "error": opened.get("error")})
                return opened
            route.worker_id = target_id
            route.migrations += 1
            self.migrations += 1
            if span is not None:
                self.spans.end(span, ok=True)
            logger.info("session migrated", extra={
                "session": name, "from_worker": source.worker_id,
                "to_worker": target_id,
                "records_fed": opened["snapshot"].get("records_fed")})
            return {"ok": True, "session": name, "worker": target_id,
                    "migrated": True, "snapshot": opened["snapshot"]}

    async def scale(self, target: int) -> dict:
        """Grow or shrink the fleet; rebalance sessions by consistent hash.

        Join: new workers take only the ring segments the hash assigns
        them — sessions whose owner changed migrate over, everything
        else stays put.  Leave: the highest-id workers retire, draining
        each routed session to its post-removal ring owner before the
        process is shut down.
        """
        if target < 1:
            raise ServiceError(f"workers must be >= 1, got {target}")
        added: List[int] = []
        removed: List[int] = []
        migrated: List[str] = []
        while len(self._workers) < target:
            handle = await self._spawn_worker()
            added.append(handle.worker_id)
        if added:
            new_ids = set(added)
            for name in list(self._routes):
                route = self._routes.get(name)
                if route is None:
                    continue
                owner = self.ring.owner(name)
                if owner in new_ids and owner != route.worker_id:
                    result = await self.migrate(name, owner)
                    if result.get("ok") and result.get("migrated"):
                        migrated.append(name)
        while len(self._workers) > target:
            worker_id = max(self._workers)
            migrated.extend(await self._retire_worker(worker_id))
            removed.append(worker_id)
        return {"ok": True, "workers": sorted(self._workers),
                "added": added, "removed": removed, "migrated": migrated}

    async def _retire_worker(self, worker_id: int) -> List[str]:
        handle = self._workers[worker_id]
        self.ring.remove(worker_id)
        moved: List[str] = []
        for name in list(self._routes):
            route = self._routes.get(name)
            if route is None or route.worker_id != worker_id:
                continue
            result = await self.migrate(name, self.ring.owner(name))
            if result.get("ok") and result.get("migrated"):
                moved.append(name)
        self._workers.pop(worker_id, None)
        try:
            await handle.ops.request({"op": "shutdown"})
        except _CONNECTION_ERRORS:
            pass
        for conn in (handle.ops, handle.obs):
            if conn is not None:
                await conn.close()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, handle.process.join,
                                   _WORKER_JOIN_TIMEOUT)
        if handle.process.is_alive():
            handle.process.terminate()
        handle.alive = False
        logger.info("worker retired", extra={"worker_id": worker_id,
                                             "migrated": moved})
        return moved

    # ------------------------------------------------------------------
    # Fleet observability
    # ------------------------------------------------------------------
    async def _fanout(self, header: dict) -> Dict[int, dict]:
        """One request to every live worker over its obs connection."""
        results: Dict[int, dict] = {}
        for worker_id in sorted(list(self._workers)):
            handle = self._workers.get(worker_id)
            if handle is None:
                continue
            try:
                results[worker_id] = await handle.obs.request(dict(header))
            except _CONNECTION_ERRORS as exc:
                self._mark_dead(handle, f"{type(exc).__name__}: {exc}")
        return results

    def _router_metrics_text(self) -> str:
        from repro.obs.export import prometheus_text

        return prometheus_text([
            ("cluster_workers", {}, len(self._workers), "gauge"),
            ("cluster_sessions_routed", {}, len(self._routes), "gauge"),
            ("cluster_migrations", {}, self.migrations, "counter"),
        ])

    async def metrics_text(self) -> str:
        responses = await self._fanout({"op": "metrics"})
        texts = {worker_id: response["text"]
                 for worker_id, response in responses.items()
                 if response.get("ok")}
        return merge_worker_metrics(texts,
                                    router_text=self._router_metrics_text())

    async def cluster_health(self) -> Tuple[HealthReport,
                                            Dict[int, HealthReport],
                                            List[int]]:
        """Fleet-composed health: (merged, per-worker, unreachable ids)."""
        responses = await self._fanout({"op": "health"})
        reports: Dict[int, HealthReport] = {}
        unreachable = [worker_id for worker_id in sorted(self._workers)
                       if worker_id not in responses]
        for worker_id, response in responses.items():
            if response.get("ok"):
                reports[worker_id] = HealthReport.from_dict(
                    response["health"])
            else:
                unreachable.append(worker_id)
        return compose_health(reports, sorted(unreachable)), reports, \
            sorted(unreachable)

    # ------------------------------------------------------------------
    # Protocol front-end
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        #: Per-client upstream connections, one per worker touched — a
        #: feed blocked on backpressure stalls only this client.
        upstreams: Dict[int, WorkerConnection] = {}
        try:
            while True:
                try:
                    prefix = await reader.readexactly(
                        protocol.FRAME_PREFIX.size)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                try:
                    header_len, payload_len = protocol.parse_prefix(prefix)
                    header = protocol.decode_header(
                        await reader.readexactly(header_len))
                    payload = (await reader.readexactly(payload_len)
                               if payload_len else b"")
                except asyncio.IncompleteReadError:
                    break
                except ServiceError as exc:
                    writer.write(protocol.encode_frame(
                        protocol.error_response(str(exc), "protocol")))
                    await writer.drain()
                    break
                op = header.get("op")
                response = None
                if self.spans.enabled:
                    try:
                        protocol.trace_context(header)
                    except ServiceError as exc:
                        response = protocol.error_response(str(exc),
                                                           "protocol")
                if response is None:
                    response = await self._dispatch(header, payload,
                                                    upstreams)
                writer.write(protocol.encode_frame(response))
                await writer.drain()
                if op == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Drain cancelled this handler after the grace period; exit
            # quietly instead of letting the streams callback log it.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            for conn in upstreams.values():
                await conn.close()
            writer.close()
            try:
                await writer.wait_closed()
            except _CONNECTION_ERRORS:
                pass

    async def _dispatch(self, header: dict, payload: bytes,
                        upstreams: Dict[int, WorkerConnection]) -> dict:
        op = header.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op in SESSION_OPS:
                return await self._proxy_session_op(header, payload,
                                                    upstreams)
            if op == "migrate":
                return await self._op_migrate(header)
            if op == "cluster":
                return self._op_cluster()
            if op == "scale":
                return await self.scale(header.get("workers", 0))
            if op == "stats":
                return await self._op_stats()
            if op == "metrics":
                return {"ok": True, "text": await self.metrics_text()}
            if op == "health":
                merged, _, _ = await self.cluster_health()
                if not merged.ok:
                    logger.warning("cluster health degraded", extra={
                        "status": merged.status,
                        "detectors": [verdict.detector
                                      for verdict in merged.verdicts
                                      if not verdict.ok]})
                return {"ok": True,
                        "health": protocol.health_to_dict(merged)}
            if op == "spans":
                return await self._op_spans(header)
            if op == "evict":
                return await self._op_evict(header)
            if op == "shutdown":
                asyncio.get_running_loop().call_soon(
                    asyncio.ensure_future, self.drain())
                return {"ok": True, "draining": True}
            return protocol.error_response(f"unknown op {op!r}", "protocol")
        except ReproError as exc:
            return protocol.error_response(str(exc), type(exc).__name__)
        except Exception as exc:  # never let one request kill the router
            logger.exception("unhandled router error in op %r", op)
            return protocol.error_response(
                f"internal error: {type(exc).__name__}: {exc}", "internal")

    async def _op_migrate(self, header: dict) -> dict:
        name = header.get("session")
        if not isinstance(name, str) or not name:
            raise ServiceError("migrate requires a session name")
        target = header.get("worker")
        if target is not None and not isinstance(target, int):
            raise ServiceError("migrate 'worker' must be an integer id")
        return await self.migrate(name, target)

    def _op_cluster(self) -> dict:
        workers = []
        for worker_id in sorted(self._workers):
            handle = self._workers[worker_id]
            sessions = sorted(name for name, route in self._routes.items()
                              if route.worker_id == worker_id)
            workers.append({
                "worker": worker_id,
                "pid": handle.process.pid,
                "alive": handle.process.is_alive(),
                "sessions": sessions,
            })
        return {"ok": True, "workers": workers, "router": {
            "worker_count": len(self._workers),
            "sessions_routed": len(self._routes),
            "migrations": self.migrations,
            "tracing": self.spans.enabled,
            "checkpoint_dir": str(self.checkpoint_dir),
        }}

    async def _op_stats(self) -> dict:
        responses = await self._fanout({"op": "stats"})
        summed_keys = ("live_sessions", "sessions_opened",
                       "sessions_resumed", "chunks_executed",
                       "records_executed", "backpressure_waits",
                       "spans_recorded")
        aggregate = {key: 0 for key in summed_keys}
        per_worker: Dict[str, dict] = {}
        sessions: List[str] = []
        for worker_id, response in sorted(responses.items()):
            if not response.get("ok"):
                continue
            stats = response["stats"]
            per_worker[str(worker_id)] = stats
            sessions.extend(response.get("sessions", []))
            for key in summed_keys:
                aggregate[key] += int(stats.get(key, 0))
        aggregate["max_inflight_chunks"] = self.max_inflight_chunks
        aggregate["tracing"] = self.spans.enabled
        aggregate["workers"] = len(self._workers)
        aggregate["migrations"] = self.migrations
        return {"ok": True, "stats": aggregate, "sessions": sorted(sessions),
                "workers": per_worker}

    async def _op_spans(self, header: dict) -> dict:
        if not self.spans.enabled:
            raise ServiceError(
                "router started without tracing; no spans are recorded "
                "(start with --trace)")
        clear = bool(header.get("clear", False))
        responses = await self._fanout({"op": "spans", "clear": clear})
        spans = protocol.spans_to_list(self.spans.spans(clear=clear))
        summaries = [self.spans.summary()]
        for worker_id, response in sorted(responses.items()):
            if response.get("ok"):
                spans.extend(response["spans"])
                summaries.append(response["summary"])
        return {"ok": True, "spans": spans,
                "summary": merge_span_summaries(summaries)}

    async def _op_evict(self, header: dict) -> dict:
        responses = await self._fanout({
            "op": "evict",
            "max_idle_seconds": float(header.get("max_idle_seconds", 0.0))})
        evicted: List[str] = []
        for response in responses.values():
            if response.get("ok"):
                evicted.extend(response.get("evicted", []))
        return {"ok": True, "evicted": sorted(evicted)}

    # ------------------------------------------------------------------
    # Metrics / health HTTP listener
    # ------------------------------------------------------------------
    async def _handle_metrics_request(self, reader: asyncio.StreamReader,
                                      writer: asyncio.StreamWriter) -> None:
        """Fleet-composed ``GET /metrics`` and ``GET /healthz``."""
        try:
            request_line = await asyncio.wait_for(reader.readline(),
                                                  timeout=10.0)
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else ""
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            if path.split("?")[0] == "/metrics":
                body = (await self.metrics_text()).encode("utf-8")
                status = "200 OK"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif path.split("?")[0] == "/healthz":
                merged, reports, unreachable = await self.cluster_health()
                payload = {
                    "status": merged.status,
                    "verdicts": [verdict.to_dict()
                                 for verdict in merged.verdicts],
                    "sessions": dict(merged.sessions),
                    "workers": {str(worker_id): report.to_dict()
                                for worker_id, report in
                                sorted(reports.items())},
                    "unreachable_workers": unreachable,
                }
                body = (json.dumps(payload, separators=(",", ":")) + "\n"
                        ).encode("utf-8")
                status = ("200 OK" if merged.ok
                          else "503 Service Unavailable")
                content_type = "application/json; charset=utf-8"
            else:
                body = b"not found\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            writer.write(
                (f"HTTP/1.0 {status}\r\n"
                 f"Content-Type: {content_type}\r\n"
                 f"Content-Length: {len(body)}\r\n"
                 f"Connection: close\r\n\r\n").encode("latin-1") + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except _CONNECTION_ERRORS:
                pass


def run_cluster(workers: int = 2, host: str = "127.0.0.1", port: int = 8642,
                checkpoint_dir: Optional[str] = None,
                max_inflight_chunks: int = 4,
                worker_threads: int = 4,
                parallelism: str = "serial",
                checkpoint_interval: int = 0,
                metrics_port: Optional[int] = None,
                tracing: bool = False,
                log_json: bool = False,
                health_config: Optional[HealthConfig] = None) -> dict:
    """Blocking entry point for ``python -m repro serve --workers N``.

    Spawns the worker fleet, serves until SIGTERM/SIGINT, then drains:
    in-flight requests finish, every worker checkpoints its open
    sessions to the shared directory and exits, and the router returns
    its final counters.
    """
    from repro.service.server import _serve

    if log_json:
        configure_service_logging(json_lines=True,
                                  static_fields={"worker_id": "router"})
    router = ClusterRouter(
        workers=workers, host=host, port=port, metrics_port=metrics_port,
        checkpoint_dir=checkpoint_dir,
        max_inflight_chunks=max_inflight_chunks,
        worker_threads=worker_threads, parallelism=parallelism,
        checkpoint_interval=checkpoint_interval, tracing=tracing,
        log_json=log_json, health_config=health_config)
    try:
        asyncio.run(_serve(router))
    finally:
        router.cleanup()
    return router.summary()
