"""On-disk simulator checkpoints: versioned, atomic, self-describing.

A checkpoint is one pickle file holding a :class:`Checkpoint` payload —
the session's identity (prefetcher registry name, workload label, full
:class:`~repro.config.SimConfig`), its stream position, and the deep
:meth:`~repro.sim.engine.SystemSimulator.state_dict` snapshot.  Restoring
rebuilds the simulator from the stored config through the prefetcher
registry and loads the state on top, so a resumed session continues
bit-identically to the original run (``tests/test_service_state.py``).

Files are written to a temporary sibling and :func:`os.replace`\\ d into
place, so a crash mid-write leaves the previous checkpoint intact —
readers only ever observe complete files.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.config import SimConfig
from repro.errors import CheckpointError
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator

PathLike = Union[str, Path]

#: First bytes of every checkpoint payload; rejects arbitrary pickles.
CHECKPOINT_MAGIC = "planaria-checkpoint"
#: Bump on any incompatible change to the state layout.
CHECKPOINT_VERSION = 1


@dataclass
class Checkpoint:
    """Everything needed to rebuild and resume one simulation session."""

    prefetcher: str
    workload: str
    config: SimConfig
    records_fed: int
    chunks_fed: int
    state: dict
    magic: str = CHECKPOINT_MAGIC
    version: int = CHECKPOINT_VERSION
    extra: dict = field(default_factory=dict)


def save_checkpoint(path: PathLike, checkpoint: Checkpoint) -> Path:
    """Atomically write a checkpoint; returns the final path.

    The temporary file lives in the target directory so the final
    :func:`os.replace` is a same-filesystem rename (atomic on POSIX).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Read and validate a checkpoint file.

    Raises:
        CheckpointError: missing file, not a checkpoint, or an
            incompatible version.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(f"{path}: not a readable checkpoint: {exc}") from exc
    if not isinstance(payload, Checkpoint) or payload.magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: not a planaria checkpoint")
    if payload.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {payload.version}, "
            f"this build reads version {CHECKPOINT_VERSION}")
    return payload


def restore_simulator(checkpoint: Checkpoint) -> SystemSimulator:
    """Rebuild a live simulator from a checkpoint, mid-trace state loaded.

    A checkpoint written by an observed session carries its epoch size in
    ``extra["epoch_records"]``; collectors are re-attached *before* the
    state loads so each channel's timeline resumes where it left off.
    """
    simulator = SystemSimulator(
        checkpoint.config,
        lambda layout, channel: make_prefetcher(checkpoint.prefetcher,
                                                layout, channel),
    )
    epoch_records = checkpoint.extra.get("epoch_records")
    if epoch_records:
        from repro.obs import attach_observability

        attach_observability(simulator, epoch_records=int(epoch_records))
    simulator.load_state(checkpoint.state)
    return simulator
