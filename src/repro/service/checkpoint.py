"""On-disk simulator checkpoints: versioned, atomic, self-describing.

A checkpoint is one pickle file holding a :class:`Checkpoint` payload —
the session's identity (prefetcher registry name, workload label, full
:class:`~repro.config.SimConfig`), its stream position, and the deep
:meth:`~repro.sim.engine.SystemSimulator.state_dict` snapshot.  Restoring
rebuilds the simulator from the stored config through the prefetcher
registry and loads the state on top, so a resumed session continues
bit-identically to the original run (``tests/test_service_state.py``).

Files are written to a temporary sibling and :func:`os.replace`\\ d into
place, so a crash mid-write leaves the previous checkpoint intact —
readers only ever observe complete files.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.config import SimConfig
from repro.errors import CheckpointError, CheckpointMismatchError
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator
# Re-exported: the fingerprint moved to the shared provenance helper so
# campaign-cell provenance and BENCH writers use the same hash, but every
# service-layer caller keeps importing it from here.
from repro.utils.provenance import config_fingerprint  # noqa: F401

PathLike = Union[str, Path]

#: First bytes of every checkpoint payload; rejects arbitrary pickles.
CHECKPOINT_MAGIC = "planaria-checkpoint"
#: Bump on any incompatible change to the state layout.
CHECKPOINT_VERSION = 1


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename).

    The temporary file lives in the target directory so the final
    :func:`os.replace` is a same-filesystem rename (atomic on POSIX):
    a crash — up to and including ``kill -9`` — mid-write leaves the
    previous file intact, and readers only ever observe complete files.
    Shared by simulator checkpoints and campaign progress state.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


@dataclass
class Checkpoint:
    """Everything needed to rebuild and resume one simulation session."""

    prefetcher: str
    workload: str
    config: SimConfig
    records_fed: int
    chunks_fed: int
    state: dict
    magic: str = CHECKPOINT_MAGIC
    version: int = CHECKPOINT_VERSION
    extra: dict = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        """The prefetcher/config fingerprint this checkpoint was written
        under (derived, so checkpoints from older builds carry it too)."""
        return config_fingerprint(self.prefetcher, self.config)


def validate_restore(name: str, checkpoint: Checkpoint,
                     prefetcher: Optional[str] = None,
                     config: Optional[SimConfig] = None) -> None:
    """Refuse to restore a checkpoint into a differently-configured engine.

    ``prefetcher``/``config`` describe the engine the caller is about to
    ``load_state()`` into (``None`` means "taken from the checkpoint
    itself", which is always compatible).  Raises
    :class:`~repro.errors.CheckpointMismatchError` naming both
    fingerprints on any divergence — *before* any state is loaded, so a
    mismatched restore can never leave a half-loaded simulator behind.
    """
    target_prefetcher = (checkpoint.prefetcher if prefetcher is None
                         else prefetcher)
    target_config = checkpoint.config if config is None else config
    expected = checkpoint.fingerprint
    actual = config_fingerprint(target_prefetcher, target_config)
    if expected != actual:
        details = []
        if target_prefetcher != checkpoint.prefetcher:
            details.append(f"prefetcher {checkpoint.prefetcher!r} != "
                           f"{target_prefetcher!r}")
        if config is not None and config != checkpoint.config:
            details.append("config differs")
        raise CheckpointMismatchError(name, expected, actual,
                                      detail="; ".join(details))


def save_checkpoint(path: PathLike, checkpoint: Checkpoint) -> Path:
    """Atomically write a checkpoint; returns the final path."""
    return atomic_write_bytes(
        path, pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL))


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Read and validate a checkpoint file.

    Raises:
        CheckpointError: missing file, not a checkpoint, or an
            incompatible version.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(f"{path}: not a readable checkpoint: {exc}") from exc
    if not isinstance(payload, Checkpoint) or payload.magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: not a planaria checkpoint")
    if payload.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {payload.version}, "
            f"this build reads version {CHECKPOINT_VERSION}")
    return payload


def restore_simulator(checkpoint: Checkpoint,
                      prefetcher: Optional[str] = None,
                      config: Optional[SimConfig] = None) -> SystemSimulator:
    """Rebuild a live simulator from a checkpoint, mid-trace state loaded.

    A checkpoint written by an observed session carries its epoch size in
    ``extra["epoch_records"]``; collectors are re-attached *before* the
    state loads so each channel's timeline resumes where it left off.
    Passing ``prefetcher``/``config`` asserts the engine the caller
    expects to restore into; a fingerprint mismatch raises
    :class:`~repro.errors.CheckpointMismatchError` before any state loads.
    """
    validate_restore("<restore>", checkpoint, prefetcher=prefetcher,
                     config=config)
    simulator = SystemSimulator(
        checkpoint.config,
        lambda layout, channel: make_prefetcher(checkpoint.prefetcher,
                                                layout, channel),
    )
    epoch_records = checkpoint.extra.get("epoch_records")
    if epoch_records:
        from repro.obs import attach_observability

        attach_observability(simulator, epoch_records=int(epoch_records))
    simulator.load_state(checkpoint.state)
    return simulator
