"""The service wire protocol: length-prefixed JSON + binary columns.

Every message — request or response — is one frame::

    +------------------+------------------+—————————————+—————————————+
    | header_len (u32) | payload_len (u32)| JSON header | raw payload |
    +------------------+------------------+—————————————+—————————————+
          big-endian        big-endian       UTF-8        optional

The header is a small JSON object (``op``/``session``/... on requests,
``ok``/``error``/result fields on responses).  The payload carries trace
chunks for ``feed``: the four :class:`~repro.trace.buffer.TraceBuffer`
columns concatenated in declaration order as little-endian bytes
(``u64`` addresses, ``u8`` access types, ``u8`` devices, ``i64`` arrival
times — 18 bytes/record, the same packing density as the binary trace
format).  ``header["count"]`` gives the record count; the payload length
must be exactly ``18 * count``.

Numbers survive the JSON hop bit-exactly: ints are arbitrary precision
and ``json`` emits floats with ``repr``'s shortest round-trip form, so
:class:`~repro.sim.metrics.RunMetrics` compare equal across the wire —
the end-to-end service equivalence tests depend on this.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Optional, Tuple

import numpy as np

from repro.errors import ServiceError
from repro.sim.metrics import RunMetrics
from repro.trace.buffer import TraceBuffer

#: u32 header length + u32 payload length.
FRAME_PREFIX = struct.Struct(">II")
#: Caps guard a confused peer from making the server allocate gigabytes.
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 28

_BYTES_PER_RECORD = 18  # 8 (address) + 1 (type) + 1 (device) + 8 (time)


def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_HEADER_BYTES:
        raise ServiceError(f"header too large: {len(raw)} bytes")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ServiceError(f"payload too large: {len(payload)} bytes")
    return FRAME_PREFIX.pack(len(raw), len(payload)) + raw + payload


def decode_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ServiceError("frame header must be a JSON object")
    return header


def parse_prefix(prefix: bytes) -> Tuple[int, int]:
    """Validate and split the 8-byte frame prefix."""
    header_len, payload_len = FRAME_PREFIX.unpack(prefix)
    if header_len > MAX_HEADER_BYTES:
        raise ServiceError(f"declared header of {header_len} bytes")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise ServiceError(f"declared payload of {payload_len} bytes")
    return header_len, payload_len


# ----------------------------------------------------------------------
# Trace-chunk payloads
# ----------------------------------------------------------------------
def encode_buffer(buffer: TraceBuffer) -> bytes:
    """Pack a chunk's columns as the feed payload (18 B/record)."""
    return b"".join((
        buffer.addresses.astype("<u8", copy=False).tobytes(),
        buffer.access_types.tobytes(),
        buffer.devices.tobytes(),
        buffer.arrival_times.astype("<i8", copy=False).tobytes(),
    ))


def decode_buffer(count: int, payload: bytes) -> TraceBuffer:
    """Rebuild a :class:`TraceBuffer` from a feed payload.

    Raises:
        ServiceError: count/length mismatch (truncated or padded frame).
    """
    if count < 0:
        raise ServiceError(f"negative record count {count}")
    expected = count * _BYTES_PER_RECORD
    if len(payload) != expected:
        raise ServiceError(
            f"feed payload of {len(payload)} bytes does not match "
            f"{count} records ({expected} bytes)")
    addresses = np.frombuffer(payload, dtype="<u8", count=count, offset=0)
    access_types = np.frombuffer(payload, dtype="u1", count=count,
                                 offset=8 * count)
    devices = np.frombuffer(payload, dtype="u1", count=count,
                            offset=9 * count)
    arrival_times = np.frombuffer(payload, dtype="<i8", count=count,
                                  offset=10 * count)
    return TraceBuffer(addresses, access_types, devices, arrival_times)


# ----------------------------------------------------------------------
# Metrics across the wire
# ----------------------------------------------------------------------
def metrics_to_dict(metrics: RunMetrics) -> dict:
    return dataclasses.asdict(metrics)


def metrics_from_dict(payload: dict) -> RunMetrics:
    try:
        return RunMetrics(**payload)
    except TypeError as exc:
        raise ServiceError(f"malformed metrics payload: {exc}") from exc


def snapshot_to_dict(snapshot) -> dict:
    """Serialise a :class:`~repro.service.session.SessionSnapshot`."""
    return {
        "name": snapshot.name,
        "prefetcher": snapshot.prefetcher,
        "workload": snapshot.workload,
        "records_fed": snapshot.records_fed,
        "chunks_fed": snapshot.chunks_fed,
        "metrics": metrics_to_dict(snapshot.metrics),
    }


def snapshot_from_dict(payload: dict) -> "SessionSnapshot":
    from repro.service.session import SessionSnapshot

    try:
        return SessionSnapshot(
            name=payload["name"],
            prefetcher=payload["prefetcher"],
            workload=payload["workload"],
            records_fed=payload["records_fed"],
            chunks_fed=payload["chunks_fed"],
            metrics=metrics_from_dict(payload["metrics"]),
        )
    except KeyError as exc:
        raise ServiceError(f"malformed snapshot payload: missing {exc}") from exc


def epochs_to_list(epochs) -> list:
    """Serialise a timeline (``EpochRecord`` list) for a response header."""
    return [epoch.to_dict() for epoch in epochs]


def epochs_from_list(items: list) -> list:
    from repro.obs.timeline import EpochRecord

    try:
        return [EpochRecord.from_dict(item) for item in items]
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed timeline payload: {exc}") from exc


def events_to_list(events) -> list:
    return [event.to_dict() for event in events]


def events_from_list(items: list) -> list:
    from repro.obs.events import TraceEvent

    try:
        return [TraceEvent.from_dict(item) for item in items]
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed events payload: {exc}") from exc


def spans_to_list(spans) -> list:
    """Serialise :class:`~repro.obs.trace_spans.SpanRecord` objects."""
    return [span.to_dict() for span in spans]


def spans_from_list(items: list) -> list:
    from repro.obs.trace_spans import SpanRecord

    try:
        return [SpanRecord.from_dict(item) for item in items]
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed spans payload: {exc}") from exc


def health_to_dict(report) -> dict:
    """Serialise a :class:`~repro.obs.health.HealthReport`."""
    return report.to_dict()


def health_from_dict(payload: dict) -> "HealthReport":
    from repro.obs.health import HealthReport

    try:
        return HealthReport.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed health payload: {exc}") from exc


def trace_context(header: dict) -> Optional[dict]:
    """The request's wire trace context, validated.

    Clients propagate tracing by attaching ``"trace": {"trace_id": ...,
    "span_id": ...}`` to any request header; both ids are short hex
    strings.  Absent or ``None`` means an untraced request — never an
    error, so tracing-unaware clients keep working against a tracing
    server and vice versa.
    """
    context = header.get("trace")
    if context is None:
        return None
    if (not isinstance(context, dict)
            or not isinstance(context.get("trace_id"), str)
            or not isinstance(context.get("span_id"), str)):
        raise ServiceError(
            "trace context must be {\"trace_id\": str, \"span_id\": str}")
    return {"trace_id": context["trace_id"], "span_id": context["span_id"]}


def error_response(message: str, kind: Optional[str] = None) -> dict:
    response = {"ok": False, "error": message}
    if kind:
        response["kind"] = kind
    return response
