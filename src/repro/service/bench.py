"""Service throughput benchmark: ``python -m repro bench-serve``.

Starts an in-process :class:`~repro.service.server.SimulationServer` on an
ephemeral port, drives many concurrent client sessions through the full
TCP path (open → chunked feed → snapshot → close), and writes the results
to ``BENCH_service.json`` at the repo root.

The benchmark is also a correctness gate, enforcing the two service
guarantees before recording any numbers:

* every session's final metrics are bit-identical to an offline
  :func:`~repro.sim.runner.simulate` of the same trace, and
* backpressure actually engaged (``backpressure_waits > 0``) — the
  deliberately small ``max_inflight_chunks`` plus more client threads
  than pool workers guarantees saturation.
"""

from __future__ import annotations

import asyncio
import json
import platform
import threading
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional

from repro.config import SimConfig
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import SimulationServer
from repro.service.session import SessionManager
from repro.sim.engine import channel_warmup_counts
from repro.sim.metrics import RunMetrics
from repro.sim.runner import simulate
from repro.trace.buffer import TraceBuffer
from repro.trace.generator import generate_trace_buffer, get_profile

DEFAULT_RESULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_service.json"
#: Prefetchers cycled across sessions (2 sessions each at the default 8).
BENCH_PREFETCHERS = ("none", "stride", "bop", "planaria")


class _ServerThread:
    """An in-process server on its own event-loop thread (port 0)."""

    def __init__(self, manager: SessionManager,
                 metrics_port: "int | None" = None) -> None:
        self.server = SimulationServer(manager, port=0,
                                       metrics_port=metrics_port)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-bench-server",
                                        daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise ServiceError("benchmark server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(checkpoint=False), self._loop)
        try:
            future.result(timeout=30)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def metrics_port(self) -> "int | None":
        return self.server.metrics_port


def _drive_session(port: int, name: str, prefetcher: str,
                   buffer: TraceBuffer, config: SimConfig,
                   warmup: List[int], chunk_records: int,
                   out: Dict[str, RunMetrics],
                   errors: Dict[str, BaseException]) -> None:
    try:
        with ServiceClient.connect(port=port) as client:
            client.open(name, prefetcher, workload="bench", config=config,
                        warmup_records=warmup)
            client.feed_trace(name, buffer, chunk_records=chunk_records)
            out[name] = client.close_session(name).metrics
    except BaseException as exc:  # re-raised on the main thread
        errors[name] = exc


def run_service_bench(sessions: int = 8, length: int = 20_000, seed: int = 7,
                      app: str = "CFM", chunk_records: int = 1024,
                      max_inflight_chunks: int = 2, workers: int = 4,
                      output: Optional[Path] = DEFAULT_RESULT_PATH,
                      tracing: bool = True,
                      spans_out: Optional[Path] = None) -> dict:
    """Run the benchmark; returns (and optionally writes) the report.

    With ``tracing`` (the default) the manager records request spans, so
    the report carries p50/p95/p99 per-chunk feed latency next to the
    throughput number — the tail the aggregate records/s hides.  The
    bit-identity gate below then also covers the tracing-on path:
    every session must still match the untraced offline run exactly.
    ``spans_out`` additionally dumps the retained spans as Chrome
    trace-event JSON (Perfetto-viewable).
    """
    config = SimConfig.experiment_scale()
    buffer = generate_trace_buffer(get_profile(app), length, seed=seed,
                                   layout=config.layout)
    warmup = channel_warmup_counts(buffer, config)
    plan = [(f"bench-{i:02d}", BENCH_PREFETCHERS[i % len(BENCH_PREFETCHERS)])
            for i in range(sessions)]

    offline: Dict[str, RunMetrics] = {}
    for prefetcher in sorted({p for _, p in plan}):
        offline[prefetcher] = simulate(
            buffer, prefetcher, workload_name="bench", config=config).metrics

    manager = SessionManager(max_inflight_chunks=max_inflight_chunks,
                             workers=workers, default_config=config,
                             tracing=tracing)
    results: Dict[str, RunMetrics] = {}
    errors: Dict[str, BaseException] = {}
    with _ServerThread(manager) as running:
        threads = [
            threading.Thread(
                target=_drive_session,
                args=(running.port, name, prefetcher, buffer, config,
                      warmup, chunk_records, results, errors),
                name=f"repro-bench-{name}")
            for name, prefetcher in plan
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    if errors:
        name, first = sorted(errors.items())[0]
        raise ServiceError(f"session {name!r} failed: {first}") from first
    stats = manager.stats()
    span_summary = manager.span_summary() if tracing else {}
    health = manager.health_report() if tracing else None
    if spans_out is not None:
        from repro.obs.trace_spans import write_chrome_trace

        write_chrome_trace(spans_out, manager.spans.spans(),
                           process_name="repro-bench-serve")
    manager.shutdown(checkpoint=False)

    mismatched = [
        name for name, prefetcher in plan
        if results.get(name) != offline[prefetcher]
    ]
    if mismatched:
        raise ServiceError(
            f"service metrics diverged from offline simulate() for "
            f"sessions {mismatched}")
    if stats["backpressure_waits"] == 0:
        raise ServiceError(
            "backpressure never engaged — the benchmark did not exercise "
            "the in-flight chunk bound")

    total_records = length * sessions
    report = {
        "benchmark": "streaming service throughput (records / second "
                     "across concurrent TCP sessions)",
        "app": app,
        "trace_length": length,
        "seed": seed,
        "sessions": sessions,
        "chunk_records": chunk_records,
        "max_inflight_chunks": max_inflight_chunks,
        "workers": workers,
        "python": platform.python_version(),
        "prefetchers": {name: prefetcher for name, prefetcher in plan},
        "elapsed_seconds": round(elapsed, 3),
        "aggregate_records_per_second": round(total_records / elapsed),
        "per_session_records_per_second": round(
            total_records / elapsed / sessions),
        "backpressure_waits": stats["backpressure_waits"],
        "chunks_executed": stats["chunks_executed"],
        "tracing": tracing,
        "equivalence": {
            "checked_sessions": len(plan),
            "bit_identical_to_offline_simulate": True,
            "traced_run": tracing,
        },
        "sample_metrics": {
            prefetcher: asdict(metrics)
            for prefetcher, metrics in offline.items()
        },
    }
    if tracing:
        feed = span_summary.get("session.feed_chunk", {})
        report["feed_latency_us"] = {
            "chunks": int(feed.get("count", 0)),
            "mean": round(feed.get("mean_us", 0.0), 1),
            "p50": feed.get("p50_us", 0.0),
            "p95": feed.get("p95_us", 0.0),
            "p99": feed.get("p99_us", 0.0),
            "max": round(feed.get("max_us", 0.0), 1),
        }
        report["span_summary"] = {
            name: {key: round(value, 1) for key, value in entry.items()}
            for name, entry in span_summary.items()
        }
        if health is not None:
            report["health"] = health.to_dict()
    if spans_out is not None:
        report["spans_written_to"] = str(spans_out)
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        report["written_to"] = str(output)
    return report
