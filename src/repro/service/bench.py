"""Service throughput benchmark: ``python -m repro bench-serve``.

Starts an in-process :class:`~repro.service.server.SimulationServer` on an
ephemeral port, drives many concurrent client sessions through the full
TCP path (open → chunked feed → snapshot → close), and writes the results
to ``BENCH_service.json`` at the repo root.

The benchmark is also a correctness gate, enforcing the two service
guarantees before recording any numbers:

* every session's final metrics are bit-identical to an offline
  :func:`~repro.sim.runner.simulate` of the same trace, and
* backpressure actually engaged (``backpressure_waits > 0``) — the
  deliberately small ``max_inflight_chunks`` plus more client threads
  than pool workers guarantees saturation.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.config import SimConfig
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import SimulationServer
from repro.service.session import SessionManager
from repro.sim.engine import channel_warmup_counts
from repro.sim.metrics import RunMetrics
from repro.sim.runner import simulate
from repro.trace.buffer import TraceBuffer
from repro.trace.generator import generate_trace_buffer, get_profile
from repro.utils.provenance import degraded_scaling, runtime_provenance

DEFAULT_RESULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_service.json"
#: Prefetchers cycled across sessions (2 sessions each at the default 8).
BENCH_PREFETCHERS = ("none", "stride", "bop", "planaria")
#: Worker-process counts swept by the sharded benchmark.
DEFAULT_WORKERS_SWEEP = (1, 2, 4, 8)


class _ServerThread:
    """An in-process server on its own event-loop thread (port 0)."""

    def __init__(self, manager: SessionManager,
                 metrics_port: "int | None" = None) -> None:
        self.server = SimulationServer(manager, port=0,
                                       metrics_port=metrics_port)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-bench-server",
                                        daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise ServiceError("benchmark server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(checkpoint=False), self._loop)
        try:
            future.result(timeout=30)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def metrics_port(self) -> "int | None":
        return self.server.metrics_port


def _drive_session(port: int, name: str, prefetcher: str,
                   buffer: TraceBuffer, config: SimConfig,
                   warmup: List[int], chunk_records: int,
                   out: Dict[str, RunMetrics],
                   errors: Dict[str, BaseException]) -> None:
    try:
        with ServiceClient.connect(port=port) as client:
            client.open(name, prefetcher, workload="bench", config=config,
                        warmup_records=warmup)
            client.feed_trace(name, buffer, chunk_records=chunk_records)
            out[name] = client.close_session(name).metrics
    except BaseException as exc:  # re-raised on the main thread
        errors[name] = exc


def run_service_bench(sessions: int = 8, length: int = 20_000, seed: int = 7,
                      app: str = "CFM", chunk_records: int = 1024,
                      max_inflight_chunks: int = 2, workers: int = 4,
                      output: Optional[Path] = DEFAULT_RESULT_PATH,
                      tracing: bool = True,
                      spans_out: Optional[Path] = None) -> dict:
    """Run the benchmark; returns (and optionally writes) the report.

    With ``tracing`` (the default) the manager records request spans, so
    the report carries p50/p95/p99 per-chunk feed latency next to the
    throughput number — the tail the aggregate records/s hides.  The
    bit-identity gate below then also covers the tracing-on path:
    every session must still match the untraced offline run exactly.
    ``spans_out`` additionally dumps the retained spans as Chrome
    trace-event JSON (Perfetto-viewable).
    """
    config = SimConfig.experiment_scale()
    buffer = generate_trace_buffer(get_profile(app), length, seed=seed,
                                   layout=config.layout)
    warmup = channel_warmup_counts(buffer, config)
    plan = [(f"bench-{i:02d}", BENCH_PREFETCHERS[i % len(BENCH_PREFETCHERS)])
            for i in range(sessions)]

    offline: Dict[str, RunMetrics] = {}
    for prefetcher in sorted({p for _, p in plan}):
        offline[prefetcher] = simulate(
            buffer, prefetcher, workload_name="bench", config=config).metrics

    manager = SessionManager(max_inflight_chunks=max_inflight_chunks,
                             workers=workers, default_config=config,
                             tracing=tracing)
    results: Dict[str, RunMetrics] = {}
    errors: Dict[str, BaseException] = {}
    with _ServerThread(manager) as running:
        threads = [
            threading.Thread(
                target=_drive_session,
                args=(running.port, name, prefetcher, buffer, config,
                      warmup, chunk_records, results, errors),
                name=f"repro-bench-{name}")
            for name, prefetcher in plan
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    if errors:
        name, first = sorted(errors.items())[0]
        raise ServiceError(f"session {name!r} failed: {first}") from first
    stats = manager.stats()
    span_summary = manager.span_summary() if tracing else {}
    health = manager.health_report() if tracing else None
    if spans_out is not None:
        from repro.obs.trace_spans import write_chrome_trace

        write_chrome_trace(spans_out, manager.spans.spans(),
                           process_name="repro-bench-serve")
    manager.shutdown(checkpoint=False)

    mismatched = [
        name for name, prefetcher in plan
        if results.get(name) != offline[prefetcher]
    ]
    if mismatched:
        raise ServiceError(
            f"service metrics diverged from offline simulate() for "
            f"sessions {mismatched}")
    if stats["backpressure_waits"] == 0:
        raise ServiceError(
            "backpressure never engaged — the benchmark did not exercise "
            "the in-flight chunk bound")

    total_records = length * sessions
    report = {
        "benchmark": "streaming service throughput (records / second "
                     "across concurrent TCP sessions)",
        "app": app,
        "trace_length": length,
        "seed": seed,
        "sessions": sessions,
        "chunk_records": chunk_records,
        "max_inflight_chunks": max_inflight_chunks,
        "workers": workers,
        **runtime_provenance(),
        "prefetchers": {name: prefetcher for name, prefetcher in plan},
        "elapsed_seconds": round(elapsed, 3),
        "aggregate_records_per_second": round(total_records / elapsed),
        "per_session_records_per_second": round(
            total_records / elapsed / sessions),
        "backpressure_waits": stats["backpressure_waits"],
        "chunks_executed": stats["chunks_executed"],
        "tracing": tracing,
        "equivalence": {
            "checked_sessions": len(plan),
            "bit_identical_to_offline_simulate": True,
            "traced_run": tracing,
        },
        "sample_metrics": {
            prefetcher: asdict(metrics)
            for prefetcher, metrics in offline.items()
        },
    }
    if tracing:
        feed = span_summary.get("session.feed_chunk", {})
        report["feed_latency_us"] = {
            "chunks": int(feed.get("count", 0)),
            "mean": round(feed.get("mean_us", 0.0), 1),
            "p50": feed.get("p50_us", 0.0),
            "p95": feed.get("p95_us", 0.0),
            "p99": feed.get("p99_us", 0.0),
            "max": round(feed.get("max_us", 0.0), 1),
        }
        report["span_summary"] = {
            name: {key: round(value, 1) for key, value in entry.items()}
            for name, entry in span_summary.items()
        }
        if health is not None:
            report["health"] = health.to_dict()
    if spans_out is not None:
        report["spans_written_to"] = str(spans_out)
    if output is not None:
        _write_report(output, report)
        report["written_to"] = str(output)
    return report


def _write_report(output: Path, report: dict) -> None:
    """Write the single-process report, keeping any ``sharded`` section."""
    merged = dict(report)
    if output.exists():
        try:
            previous = json.loads(output.read_text())
        except (ValueError, OSError):
            previous = {}
        if isinstance(previous, dict) and "sharded" in previous:
            merged["sharded"] = previous["sharded"]
    output.write_text(json.dumps(merged, indent=2) + "\n")


# ----------------------------------------------------------------------
# Sharded (multi-process) benchmark
# ----------------------------------------------------------------------
class ClusterThread:
    """An in-process cluster router on its own event-loop thread.

    The router's engine workers are real spawned processes; only the
    router's asyncio front-end runs on this thread.  Mirrors
    :class:`_ServerThread` so tests and the benchmark share one harness.
    """

    def __init__(self, workers: int, max_inflight_chunks: int = 2,
                 worker_threads: int = 4,
                 checkpoint_dir: "str | None" = None,
                 tracing: bool = False,
                 metrics_port: "int | None" = None) -> None:
        from repro.service.cluster import ClusterRouter

        self.router = ClusterRouter(
            workers=workers, port=0, metrics_port=metrics_port,
            checkpoint_dir=checkpoint_dir,
            max_inflight_chunks=max_inflight_chunks,
            worker_threads=worker_threads, tracing=tracing)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: "BaseException | None" = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-cluster-router",
                                        daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.router.start())
        except BaseException as exc:
            self._startup_error = exc
        finally:
            self._started.set()
        if self._startup_error is None:
            self._loop.run_forever()

    def __enter__(self) -> "ClusterThread":
        self._thread.start()
        # Generous deadline: each engine worker is a spawned process
        # that imports the full package before it can listen.
        if not self._started.wait(timeout=180):
            raise ServiceError("cluster router failed to start")
        if self._startup_error is not None:
            raise ServiceError(
                f"cluster startup failed: {self._startup_error}"
            ) from self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.router.drain(), self._loop)
        try:
            future.result(timeout=180)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop.close()
            self.router.cleanup()

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def metrics_port(self) -> "int | None":
        return self.router.metrics_port


def _drive_migrated_session(port: int, name: str, prefetcher: str,
                            buffer: TraceBuffer, config: SimConfig,
                            warmup: List[int], chunk_records: int,
                            out: Dict[str, RunMetrics],
                            errors: Dict[str, BaseException],
                            migrations_done: List[int]) -> None:
    """Feed a session while migrating it twice between chunks.

    The migration points (1/3 and 2/3 through the trace) land between
    ``feed`` calls on the same connection — the router's route lock
    serialises the checkpoint hand-off against in-flight feeds, so the
    restored engine must replay into exactly the offline metrics.
    """
    try:
        with ServiceClient.connect(port=port) as client:
            client.open(name, prefetcher, workload="bench", config=config,
                        warmup_records=warmup)
            marks = {len(buffer) // 3, 2 * len(buffer) // 3}
            for start in range(0, len(buffer), chunk_records):
                if any(start <= mark < start + chunk_records
                       for mark in marks):
                    result = client.migrate(name)
                    if result.get("migrated"):
                        migrations_done.append(int(result["worker"]))
                client.feed(name, buffer[start:start + chunk_records])
            out[name] = client.close_session(name).metrics
    except BaseException as exc:  # re-raised on the main thread
        errors[name] = exc


def run_sharded_bench(workers_sweep: Iterable[int] = DEFAULT_WORKERS_SWEEP,
                      sessions: int = 8, length: int = 20_000, seed: int = 7,
                      app: str = "CFM", chunk_records: int = 1024,
                      max_inflight_chunks: int = 2, worker_threads: int = 4,
                      output: Optional[Path] = DEFAULT_RESULT_PATH) -> dict:
    """Sweep the sharded service over worker-process counts.

    For each point the full client path runs against a router + worker
    fleet; with two or more workers, one session is live-migrated twice
    mid-feed.  Every session — migrated ones included — must close
    bit-identical to offline :func:`~repro.sim.runner.simulate` before a
    number is recorded.  Results land in the ``sharded`` section of
    ``BENCH_service.json``; the committed single-process baseline at the
    top level is left untouched.
    """
    sweep = sorted({int(workers) for workers in workers_sweep})
    if not sweep or sweep[0] < 1:
        raise ServiceError(f"invalid workers sweep {list(workers_sweep)}")
    config = SimConfig.experiment_scale()
    buffer = generate_trace_buffer(get_profile(app), length, seed=seed,
                                   layout=config.layout)
    warmup = channel_warmup_counts(buffer, config)
    plan = [(f"shard-{i:02d}", BENCH_PREFETCHERS[i % len(BENCH_PREFETCHERS)])
            for i in range(sessions)]
    offline: Dict[str, RunMetrics] = {}
    for prefetcher in sorted({p for _, p in plan}):
        offline[prefetcher] = simulate(
            buffer, prefetcher, workload_name="bench", config=config).metrics

    total_records = length * sessions
    points: List[dict] = []
    migrated_checked = 0
    for workers in sweep:
        results: Dict[str, RunMetrics] = {}
        errors: Dict[str, BaseException] = {}
        migrations_done: List[int] = []
        with ClusterThread(workers, max_inflight_chunks=max_inflight_chunks,
                           worker_threads=worker_threads) as running:
            threads = []
            for index, (name, prefetcher) in enumerate(plan):
                if index == 0 and workers >= 2:
                    # One session per point rides through two live
                    # checkpoint migrations while being fed.
                    target, args = _drive_migrated_session, (
                        running.port, name, prefetcher, buffer, config,
                        warmup, chunk_records, results, errors,
                        migrations_done)
                else:
                    target, args = _drive_session, (
                        running.port, name, prefetcher, buffer, config,
                        warmup, chunk_records, results, errors)
                threads.append(threading.Thread(
                    target=target, args=args, name=f"repro-bench-{name}"))
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            with ServiceClient.connect(port=running.port) as control:
                stats = control.stats()
                topology = control.cluster()
        if errors:
            name, first = sorted(errors.items())[0]
            raise ServiceError(
                f"sharded session {name!r} failed at workers={workers}: "
                f"{first}") from first
        mismatched = [name for name, prefetcher in plan
                      if results.get(name) != offline[prefetcher]]
        if mismatched:
            raise ServiceError(
                f"sharded service metrics diverged from offline simulate() "
                f"at workers={workers} for sessions {mismatched}")
        if workers >= 2:
            if len(migrations_done) != 2:
                raise ServiceError(
                    f"expected 2 live migrations at workers={workers}, "
                    f"got {len(migrations_done)}")
            migrated_checked += 1
        per_worker = {
            worker_id: {
                "chunks_executed": entry.get("chunks_executed", 0),
                "records_executed": entry.get("records_executed", 0),
                "sessions_opened": entry.get("sessions_opened", 0),
                "sessions_resumed": entry.get("sessions_resumed", 0),
            }
            for worker_id, entry in sorted(stats["workers"].items())
        }
        points.append({
            "workers": workers,
            "elapsed_seconds": round(elapsed, 3),
            "aggregate_records_per_second": round(total_records / elapsed),
            "migrations": stats["stats"]["migrations"],
            "migrated_session_workers": migrations_done,
            "sessions_resumed": stats["stats"]["sessions_resumed"],
            "per_worker": per_worker,
            "router": topology["router"],
        })

    base = points[0]["aggregate_records_per_second"]
    section = {
        "benchmark": "sharded service throughput (router + N engine "
                     "worker processes, checkpoint-based migration)",
        "app": app,
        "trace_length": length,
        "seed": seed,
        "sessions": sessions,
        "chunk_records": chunk_records,
        "max_inflight_chunks": max_inflight_chunks,
        "worker_threads": worker_threads,
        **runtime_provenance(),
        "sweep": points,
        "speedup_vs_one_worker": {
            str(point["workers"]): round(
                point["aggregate_records_per_second"] / base, 2)
            for point in points
        },
        "equivalence": {
            "checked_sessions_per_point": len(plan),
            "bit_identical_to_offline_simulate": True,
            "points_with_live_migrated_session": migrated_checked,
        },
    }
    cores = os.cpu_count() or 1
    warning = degraded_scaling(cores, max(sweep))
    if warning is not None:
        # Stamp the report so downstream consumers can filter these
        # points out of scaling curves, and say so out loud: a sweep on
        # fewer cores than workers measures sharding overhead, not
        # scaling.
        section["degraded_provenance"] = True
        section["note"] = (
            f"{warning} — run on >= {max(sweep)} cores for the speedup "
            f"curve (docs/service.md)")
        print(f"warning: {section['note']}", file=sys.stderr)
    if output is not None:
        existing: dict = {}
        if output.exists():
            try:
                existing = json.loads(output.read_text())
            except (ValueError, OSError):
                existing = {}
        if not isinstance(existing, dict):
            existing = {}
        existing["sharded"] = section
        output.write_text(json.dumps(existing, indent=2) + "\n")
        section["written_to"] = str(output)
    return section
