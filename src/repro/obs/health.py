"""Health diagnosis: anomaly detectors over timelines, events and spans.

The obs layer already *carries* every signal an operator needs — epoch
timelines hold the windowed ``prefetch_useful``/``prefetch_fills`` ratio
that adaptive-filtering prefetch research treats as the canary for
accuracy collapse, the event tracer counts throttle suspend/resume
flaps, and the span recorder has the backpressure-wait latency
distribution.  What was missing is a **verdict**: this module turns
those signals into a small set of pluggable detectors, each a pure
streaming state machine (deterministic, no clocks of its own —
hypothesis-testable in isolation), and a :class:`HealthEngine` that
wires them to a live :class:`~repro.service.session.SessionManager`.

Detectors:

* :class:`AccuracyCollapseDetector` — windowed useful/fills ratio over
  recently *closed* epochs, degraded below a threshold.
* :class:`ThrottleOscillationDetector` — suspend/resume flap count per
  evaluation window; a prefetcher ping-ponging across its usefulness
  threshold thrashes the cache with neither steady state's benefit.
* :class:`BackpressureStallDetector` — tail percentile of counted
  FIFO/backpressure waits (from the ``session.fifo_wait`` span
  histogram); degraded when clients routinely block for too long.
* :class:`SessionStarvationDetector` — a session with queued work that
  has made no progress for too long (stuck drainer, wedged worker).

Evaluation is read-only and never quiesces: it consumes only closed
epochs, cumulative event counters and live counters, so polling
``/healthz`` perturbs nothing — the same inertness contract as the rest
of the obs layer.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs.trace_spans import SPAN_FIFO_WAIT
from repro.utils.statistics import Histogram

#: Bump on any incompatible change to the verdict/report layout.
HEALTH_SCHEMA_VERSION = 1

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"

#: Detector names as they appear in verdicts, gauges and logs.
DETECTOR_ACCURACY = "accuracy_collapse"
DETECTOR_THROTTLE = "throttle_oscillation"
DETECTOR_BACKPRESSURE = "backpressure_stall"
DETECTOR_STARVATION = "session_starvation"

#: Histogram bucket width for the detector-owned wait histogram, µs.
WAIT_BUCKET_US = 1000.0


@dataclass(frozen=True)
class DetectorVerdict:
    """One detector's judgement: the observed value vs its threshold."""

    detector: str
    ok: bool
    value: float
    threshold: float
    detail: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "DetectorVerdict":
        return cls(**payload)


@dataclass(frozen=True)
class HealthReport:
    """The engine's full answer: overall status + per-detector verdicts.

    ``sessions`` maps each live session name to its own status so the
    ``repro watch`` dashboard can show a per-session health column.
    """

    status: str
    verdicts: List[DetectorVerdict] = field(default_factory=list)
    sessions: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
            "sessions": dict(self.sessions),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HealthReport":
        return cls(
            status=payload["status"],
            verdicts=[DetectorVerdict.from_dict(entry)
                      for entry in payload.get("verdicts", [])],
            sessions=dict(payload.get("sessions", {})),
        )


@dataclass(frozen=True)
class HealthConfig:
    """Every detector threshold in one place (CLI/service knobs).

    Defaults are deliberately conservative — they flag genuinely broken
    behaviour, not a busy-but-healthy service; see
    ``docs/observability.md`` for tuning guidance.
    """

    accuracy_window_epochs: int = 8
    accuracy_min_fills: int = 64
    accuracy_threshold: float = 0.2
    throttle_window: int = 8
    throttle_max_flaps: int = 4
    backpressure_fraction: float = 0.95
    backpressure_max_wait_us: float = 2_000_000.0
    backpressure_min_waits: int = 4
    starvation_max_stall_seconds: float = 30.0


# ----------------------------------------------------------------------
# Detectors — pure streaming state machines
# ----------------------------------------------------------------------
class AccuracyCollapseDetector:
    """Windowed prefetch useful/fills ratio vs a collapse threshold.

    Feed one closed epoch at a time with :meth:`observe_epoch`; the
    detector keeps the last ``window_epochs`` epochs and judges the
    ratio of their sums.  Windows with fewer than ``min_fills`` total
    fills are *ok* by definition — an idle or demand-only phase is not a
    collapsed prefetcher.
    """

    name = DETECTOR_ACCURACY

    def __init__(self, window_epochs: int = 8, min_fills: int = 64,
                 threshold: float = 0.2) -> None:
        if window_epochs < 1:
            raise ValueError(
                f"window_epochs must be >= 1, got {window_epochs}")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.min_fills = min_fills
        self.threshold = threshold
        self._window: Deque[tuple] = deque(maxlen=window_epochs)
        self.epochs_seen = 0

    def observe_epoch(self, useful: int, fills: int) -> None:
        self._window.append((useful, fills))
        self.epochs_seen += 1

    def verdict(self) -> DetectorVerdict:
        useful = sum(entry[0] for entry in self._window)
        fills = sum(entry[1] for entry in self._window)
        ratio = useful / fills if fills else 1.0
        active = fills >= self.min_fills
        ok = (not active) or ratio >= self.threshold
        detail = (f"useful/fills {useful}/{fills} over "
                  f"{len(self._window)} epochs"
                  if active else f"inactive ({fills} fills < {self.min_fills})")
        return DetectorVerdict(self.name, ok, ratio, self.threshold, detail)


class ThrottleOscillationDetector:
    """Suspend/resume flap rate over the last ``window`` evaluations.

    Call :meth:`observe` once per evaluation tick with the number of
    throttle transitions (suspensions + resumes) since the previous
    tick; degraded when the windowed total exceeds ``max_flaps``.
    """

    name = DETECTOR_THROTTLE

    def __init__(self, window: int = 8, max_flaps: int = 4) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.max_flaps = max_flaps
        self._window: Deque[int] = deque(maxlen=window)

    def observe(self, flaps: int) -> None:
        if flaps < 0:
            raise ValueError(f"flaps must be >= 0, got {flaps}")
        self._window.append(flaps)

    def verdict(self) -> DetectorVerdict:
        total = sum(self._window)
        ok = total <= self.max_flaps
        detail = (f"{total} suspend/resume transitions in last "
                  f"{len(self._window)} evaluations")
        return DetectorVerdict(self.name, ok, float(total),
                               float(self.max_flaps), detail)


class BackpressureStallDetector:
    """Tail latency of counted backpressure waits vs a stall budget.

    Two feeding modes: stream individual wait durations through
    :meth:`observe_wait`, or hand :meth:`verdict` a live
    :class:`~repro.utils.statistics.Histogram` (the span recorder's
    ``session.fifo_wait`` histogram) to judge instead of the internal
    one.  Fewer than ``min_waits`` samples is *ok* — backpressure that
    never engages cannot stall anyone.
    """

    name = DETECTOR_BACKPRESSURE

    def __init__(self, fraction: float = 0.95,
                 max_wait_us: float = 2_000_000.0,
                 min_waits: int = 4) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self.max_wait_us = max_wait_us
        self.min_waits = min_waits
        self._histogram = Histogram(WAIT_BUCKET_US)

    def observe_wait(self, wait_us: float) -> None:
        if wait_us < 0:
            raise ValueError(f"wait_us must be >= 0, got {wait_us}")
        self._histogram.add(wait_us)

    def verdict(self, histogram: Optional[Histogram] = None
                ) -> DetectorVerdict:
        source = histogram if histogram is not None else self._histogram
        if source.count < self.min_waits:
            return DetectorVerdict(
                self.name, True, 0.0, self.max_wait_us,
                f"only {source.count} waits (< {self.min_waits})")
        tail = source.percentile(self.fraction)
        ok = tail <= self.max_wait_us
        detail = (f"p{int(self.fraction * 100)} wait {tail:.0f}us over "
                  f"{source.count} waits")
        return DetectorVerdict(self.name, ok, tail, self.max_wait_us, detail)


class SessionStarvationDetector:
    """Queued work with no progress for too long.

    Call :meth:`observe` each tick with the session's queued-or-running
    chunk count and the seconds since its last completed chunk; degraded
    only while *both* hold — an idle session stalls nobody.
    """

    name = DETECTOR_STARVATION

    def __init__(self, max_stall_seconds: float = 30.0) -> None:
        if max_stall_seconds <= 0:
            raise ValueError(
                f"max_stall_seconds must be > 0, got {max_stall_seconds}")
        self.max_stall_seconds = max_stall_seconds
        self._inflight = 0
        self._stalled_seconds = 0.0

    def observe(self, inflight: int, stalled_seconds: float) -> None:
        if inflight < 0:
            raise ValueError(f"inflight must be >= 0, got {inflight}")
        if stalled_seconds < 0:
            raise ValueError(
                f"stalled_seconds must be >= 0, got {stalled_seconds}")
        self._inflight = inflight
        self._stalled_seconds = stalled_seconds

    def verdict(self) -> DetectorVerdict:
        starving = (self._inflight > 0
                    and self._stalled_seconds > self.max_stall_seconds)
        detail = (f"{self._inflight} chunks queued, "
                  f"{self._stalled_seconds:.1f}s since last progress")
        return DetectorVerdict(self.name, not starving,
                               self._stalled_seconds,
                               self.max_stall_seconds, detail)


# ----------------------------------------------------------------------
# The engine: detectors wired to a live session manager
# ----------------------------------------------------------------------
class _SessionHealth:
    """Per-session detector state held between evaluations."""

    __slots__ = ("accuracy", "throttle", "starvation", "epoch_cursor",
                 "flap_baseline")

    def __init__(self, config: HealthConfig) -> None:
        self.accuracy = AccuracyCollapseDetector(
            window_epochs=config.accuracy_window_epochs,
            min_fills=config.accuracy_min_fills,
            threshold=config.accuracy_threshold)
        self.throttle = ThrottleOscillationDetector(
            window=config.throttle_window,
            max_flaps=config.throttle_max_flaps)
        self.starvation = SessionStarvationDetector(
            max_stall_seconds=config.starvation_max_stall_seconds)
        self.epoch_cursor = 0
        self.flap_baseline = 0


class HealthEngine:
    """Evaluates every detector against a live session manager.

    Holds streaming per-session detector state across evaluations (epoch
    cursors, event-count baselines) under its own lock.  An evaluation:

    1. per session with observability: feed *new closed* epochs to the
       accuracy detector and the flap-count delta to the oscillation
       detector — cumulative reads only, no quiesce;
    2. per session: feed queued-chunk count and seconds-since-progress
       to the starvation detector;
    3. globally: judge the backpressure detector against the span
       recorder's ``session.fifo_wait`` histogram (if tracing is on) or
       its own streamed waits.

    The report aggregates the worst verdict per detector kind (detail
    names the offending session) plus a per-session status map; dead
    sessions' state is pruned so the engine does not leak.
    """

    def __init__(self, config: Optional[HealthConfig] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or HealthConfig()
        self.clock = clock
        self.backpressure = BackpressureStallDetector(
            fraction=self.config.backpressure_fraction,
            max_wait_us=self.config.backpressure_max_wait_us,
            min_waits=self.config.backpressure_min_waits)
        self._sessions: Dict[str, _SessionHealth] = {}
        self._lock = threading.Lock()
        self.evaluations = 0
        self.last_report: Optional[HealthReport] = None

    def _session_state(self, name: str) -> _SessionHealth:
        state = self._sessions.get(name)
        if state is None:
            state = self._sessions[name] = _SessionHealth(self.config)
        return state

    def _evaluate_session(self, session: Any,
                          state: _SessionHealth) -> List[DetectorVerdict]:
        verdicts: List[DetectorVerdict] = []
        obs = getattr(session, "obs", None)
        if obs is not None:
            closed = obs.merged_timeline(include_partial=False)
            for epoch in closed[state.epoch_cursor:]:
                state.accuracy.observe_epoch(epoch.prefetch_useful,
                                             epoch.prefetch_fills)
            state.epoch_cursor = len(closed)
            verdicts.append(state.accuracy.verdict())
            counts = obs.event_counts()
            flaps = (counts.get("throttle_suspended", 0)
                     + counts.get("throttle_resumed", 0))
            state.throttle.observe(max(0, flaps - state.flap_baseline))
            state.flap_baseline = flaps
            verdicts.append(state.throttle.verdict())
        with session.cond:
            inflight = session.inflight
            stalled = max(0.0, self.clock() - session.last_progress)
        state.starvation.observe(inflight, stalled)
        verdicts.append(state.starvation.verdict())
        return verdicts

    def evaluate(self, manager: Any,
                 spans: Optional[Any] = None) -> HealthReport:
        """One read-only evaluation pass; returns (and caches) the report.

        ``manager`` duck-types :class:`~repro.service.session
        .SessionManager` (``live_sessions()`` + per-session ``obs`` /
        ``cond`` / ``inflight`` / ``last_progress``); ``spans`` is an
        optional :class:`~repro.obs.trace_spans.SpanRecorder` supplying
        the backpressure-wait histogram.
        """
        with self._lock:
            self.evaluations += 1
            sessions = manager.live_sessions()
            live_names = {session.name for session in sessions}
            for name in list(self._sessions):
                if name not in live_names:
                    del self._sessions[name]

            worst: Dict[str, DetectorVerdict] = {}
            session_status: Dict[str, str] = {}
            for session in sessions:
                state = self._session_state(session.name)
                verdicts = self._evaluate_session(session, state)
                degraded = [v for v in verdicts if not v.ok]
                session_status[session.name] = (
                    STATUS_DEGRADED if degraded else STATUS_OK)
                for verdict in verdicts:
                    named = verdict if verdict.ok else dataclasses.replace(
                        verdict,
                        detail=f"session {session.name!r}: {verdict.detail}")
                    current = worst.get(verdict.detector)
                    if current is None or (current.ok and not named.ok):
                        worst[verdict.detector] = named

            histogram = None
            if spans is not None and getattr(spans, "enabled", False):
                histogram = spans.histogram_for(SPAN_FIFO_WAIT)
            worst[DETECTOR_BACKPRESSURE] = self.backpressure.verdict(
                histogram=histogram)

            order = (DETECTOR_ACCURACY, DETECTOR_THROTTLE,
                     DETECTOR_BACKPRESSURE, DETECTOR_STARVATION)
            verdict_list = [worst[name] for name in order if name in worst]
            status = (STATUS_OK
                      if all(verdict.ok for verdict in verdict_list)
                      else STATUS_DEGRADED)
            report = HealthReport(status=status, verdicts=verdict_list,
                                  sessions=session_status)
            self.last_report = report
            return report
