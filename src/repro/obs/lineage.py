"""Prefetch lineage: per-issue provenance and fate attribution.

Every prefetch a run issues has a life cycle the aggregate
accuracy/coverage numbers flatten away:

    trigger origin -> queue outcome -> fill -> final fate

:class:`LineageCollector` records that pipeline end to end, per channel,
with *streaming-style* bounded state: exact counters keyed by a small set
of **origin buckets**, a live-block tag map bounded by the cache
capacity, a bounded ring of resolved fate events, and an LRU-capped
snapshot-reuse tracker.  Nothing here is per-record: hooks sit only on
the rare paths a prefetch actually travels (issue, queue gate, fill,
first demand touch, eviction, invalidation), all guarded by
``if <hook> is not None``.

Origin buckets
    * ``slp/d<N>`` — an SLP pattern-table replay whose snapshot has
      ``N`` set bits (the PHT snapshot identity class; at most 16
      buckets for 16-bit bitmaps).
    * ``tlp/<D>`` — a TLP transfer borrowed from a neighbour page at
      distance ``D`` (bounded by ``distance_threshold``).
    * ``src/<name>`` — every other registered prefetcher, attributed by
      the candidate's ``source`` tag at the queue gate (no per-prefetcher
      hooks needed).

Queue outcomes per bucket: ``accepted``, ``dropped_duplicate``,
``dropped_degree``, ``dropped_full``, ``suppressed`` (accuracy-throttle
gate).  Accepted candidates then resolve to ``skipped_resident``,
``discarded_unfilled`` (``prefetch_fill_sc`` off) or ``filled``; filled
blocks resolve to the four final fates ``used_timely``, ``used_late``,
``evicted_unused``, ``invalidated`` (or stay ``resident``).

Neutrality contract (same as the rest of ``repro.obs``): hooks only
*read* simulated state — RunMetrics and epoch timelines are bit-identical
lineage-on vs lineage-off (``tests/test_lineage.py``).  The one engine
consequence of attaching is that :meth:`ChannelSimulator.run_buffer`
falls back from the vectorized batch loop to the scalar loop (the batch
loop elides the per-candidate queue/fill path lineage observes); the
fallback is bit-identical by the batch-oracle contract.

Accounting invariants (checked by tests and ``repro explain``):

* ``issued == accepted + dropped_* + suppressed``
* ``accepted == skipped_resident + discarded_unfilled + filled``
* ``filled == used_timely + used_late + evicted_unused + invalidated
  + resident``
* ``used_timely + used_late == CacheStats.useful_total()`` and
  ``evicted_unused == CacheStats.unused_total()`` for a run observed
  from its first record.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional

from repro.trace.record import DeviceID

#: Bump on any incompatible change to the summary / state layout.
LINEAGE_SCHEMA_VERSION = 1

#: Default bounded-ring capacity for resolved fate events, per channel.
DEFAULT_FATE_EVENT_CAPACITY = 256

#: Default LRU capacity of the SLP snapshot-reuse tracker, per channel.
DEFAULT_SNAPSHOT_TRACK_CAPACITY = 512

#: The four terminal fates of a filled prefetch.
FATES = ("used_timely", "used_late", "evicted_unused", "invalidated")

#: Queue-gate outcomes of an issued candidate.
QUEUE_OUTCOMES = ("accepted", "dropped_duplicate", "dropped_degree",
                  "dropped_full", "suppressed")

#: Post-accept dispositions before a fate exists.
DISPOSITIONS = ("skipped_resident", "discarded_unfilled", "filled")

#: Per-bucket counter tables a collector maintains (summary field order).
_BUCKET_COUNTERS = ("issued",) + QUEUE_OUTCOMES + DISPOSITIONS + FATES

_DEVICE_NAMES = {device.value: device.name for device in DeviceID}

#: Snapshot-reuse histogram bucket labels, ascending.
_REUSE_BUCKETS = ("1", "2", "3", "4-7", "8-15", "16+")


def _reuse_bucket(count: int) -> str:
    if count <= 3:
        return str(count)
    if count <= 7:
        return "4-7"
    if count <= 15:
        return "8-15"
    return "16+"


def _bump(table: Dict[str, int], key: str) -> None:
    table[key] = table.get(key, 0) + 1


class LineageCollector:
    """Per-channel lineage state, attached as the ``lineage`` hook on the
    channel simulator, its queue, its cache and its prefetcher chain.

    All hook methods are pure accounting — they never touch simulated
    state — and every container is bounded: counters are keyed by origin
    buckets (small, workload-independent), ``_live`` by resident
    prefetched blocks (<= cache capacity), ``_origin`` by distinct
    candidate source tags, the fate ring and the snapshot tracker carry
    explicit capacities.
    """

    def __init__(self, channel: int,
                 event_capacity: int = DEFAULT_FATE_EVENT_CAPACITY,
                 snapshot_track_capacity: int =
                 DEFAULT_SNAPSHOT_TRACK_CAPACITY) -> None:
        if event_capacity < 1:
            raise ValueError(
                f"event_capacity must be >= 1, got {event_capacity}")
        if snapshot_track_capacity < 1:
            raise ValueError(f"snapshot_track_capacity must be >= 1, "
                             f"got {snapshot_track_capacity}")
        self.channel = channel
        self.event_capacity = event_capacity
        self.snapshot_track_capacity = snapshot_track_capacity
        #: bucket -> count, one table per pipeline stage.
        self.counters: Dict[str, Dict[str, int]] = {
            name: {} for name in _BUCKET_COUNTERS}
        self._bind_tables()
        #: Evicted-unused prefetches per triggering tenant device name.
        self.pollution_by_device: Dict[str, int] = {}
        # source tag -> bucket of the *current trigger*.  Exact because
        # one trigger issues at most one bucket per source (one SLP
        # replay, one TLP neighbour) and the engine gates + services a
        # trigger's candidates before the next trigger runs; sources
        # never tagged by an issue hook resolve to a cached
        # ``src/<source>`` fallback.  Bounded by the distinct source
        # tags, so a handful of entries.
        self._origin: Dict[str, str] = {}
        # block_addr -> (source, bucket, device_name) for resident
        # prefetched blocks awaiting a fate.
        self._live: Dict[int, tuple] = {}
        #: Bounded ring of resolved fate events (dicts).
        self.fate_ring = deque(maxlen=event_capacity)
        # (page, bitmap) -> replay count; LRU-capped, evictees fold into
        # the reuse histogram.
        self._snapshot_uses: "OrderedDict[tuple, int]" = OrderedDict()
        self.snapshot_reuse_histogram: Dict[str, int] = {}

    def _bind_tables(self) -> None:
        # The hot hooks run per issued prefetch; binding the stage tables
        # once keeps them to plain dict operations (no ``self.counters``
        # lookup, no helper-call overhead).
        self._issued = self.counters["issued"]
        self._accepted = self.counters["accepted"]
        self._filled = self.counters["filled"]
        self._used_timely = self.counters["used_timely"]
        self._used_late = self.counters["used_late"]

    # ------------------------------------------------------------------
    # Trigger-origin hooks (prefetcher issue paths)
    # ------------------------------------------------------------------
    def note_issue(self, candidates, bucket: str) -> None:
        """Tag the current trigger's candidates with their origin bucket.

        All of one trigger's candidates share a source tag, so tagging is
        one map write, not per-candidate state.
        """
        if candidates:
            self._origin[candidates[0].source] = bucket

    def note_slp_issue(self, page: int, pattern: int, candidates) -> None:
        """An SLP pattern-table replay: bucket by snapshot density and
        track per-snapshot reuse."""
        self.note_issue(candidates, f"slp/d{pattern.bit_count()}")
        uses = self._snapshot_uses
        key = (page, pattern)
        count = uses.get(key)
        if count is None:
            uses[key] = 1
        else:
            uses[key] = count + 1
            uses.move_to_end(key)
        while len(uses) > self.snapshot_track_capacity:
            _, evicted_count = uses.popitem(last=False)
            _bump(self.snapshot_reuse_histogram,
                  _reuse_bucket(evicted_count))

    def _bucket_of(self, source: str) -> str:
        origin = self._origin
        bucket = origin.get(source)
        if bucket is None:
            # Never tagged by an issue hook: a passive/registry
            # prefetcher.  Cache the fallback so it is a plain lookup
            # from then on (issue hooks overwrite it if one appears).
            bucket = origin[source] = "src/" + source
        return bucket

    # ------------------------------------------------------------------
    # Queue-gate hooks
    # ------------------------------------------------------------------
    def note_accept(self, candidate) -> None:
        source = candidate.source
        origin = self._origin
        bucket = origin.get(source)
        if bucket is None:
            bucket = origin[source] = "src/" + source
        issued = self._issued
        issued[bucket] = issued.get(bucket, 0) + 1
        accepted = self._accepted
        accepted[bucket] = accepted.get(bucket, 0) + 1

    def note_gate(self, source: str, accepted: int, duplicate: int,
                  degree: int, full: int) -> None:
        """Batched queue-gate outcome of one single-source push — the
        counter deltas the :class:`~repro.prefetch.queue.PrefetchQueue`
        observed while gating the trigger's candidates."""
        origin = self._origin
        bucket = origin.get(source)
        if bucket is None:
            bucket = origin[source] = "src/" + source
        issued = self._issued
        issued[bucket] = (issued.get(bucket, 0)
                          + accepted + duplicate + degree + full)
        if accepted:
            table = self._accepted
            table[bucket] = table.get(bucket, 0) + accepted
        if duplicate:
            table = self.counters["dropped_duplicate"]
            table[bucket] = table.get(bucket, 0) + duplicate
        if degree:
            table = self.counters["dropped_degree"]
            table[bucket] = table.get(bucket, 0) + degree
        if full:
            table = self.counters["dropped_full"]
            table[bucket] = table.get(bucket, 0) + full

    def note_drop(self, candidate, kind: str) -> None:
        """A queue drop; ``kind`` in duplicate/degree/full."""
        bucket = self._bucket_of(candidate.source)
        issued = self._issued
        issued[bucket] = issued.get(bucket, 0) + 1
        dropped = self.counters["dropped_" + kind]
        dropped[bucket] = dropped.get(bucket, 0) + 1

    def note_suppressed(self, candidates) -> None:
        """Candidates discarded by a suspended accuracy throttle."""
        for candidate in candidates:
            bucket = self._bucket_of(candidate.source)
            _bump(self.counters["issued"], bucket)
            _bump(self.counters["suppressed"], bucket)

    # ------------------------------------------------------------------
    # Fill-path hooks (engine _service_prefetches)
    # ------------------------------------------------------------------
    def note_skip_resident(self, candidate) -> None:
        _bump(self.counters["skipped_resident"],
              self._bucket_of(candidate.source))

    def note_unfilled(self, candidate) -> None:
        """Accepted but discarded without a fill (``prefetch_fill_sc``
        off)."""
        _bump(self.counters["discarded_unfilled"],
              self._bucket_of(candidate.source))

    def note_fill(self, candidate, requester: Optional[int],
                  now: int) -> None:
        source = candidate.source
        origin = self._origin
        bucket = origin.get(source)
        if bucket is None:
            bucket = origin[source] = "src/" + source
        filled = self._filled
        filled[bucket] = filled.get(bucket, 0) + 1
        device = _DEVICE_NAMES.get(requester) if requester is not None \
            else None
        self._live[candidate.block_addr] = (source, bucket, device)

    # ------------------------------------------------------------------
    # Fate hooks (engine demand path, eviction, cache invalidate)
    # ------------------------------------------------------------------
    def _resolve(self, block_addr: int, source: Optional[str],
                 fate: str, now: int) -> None:
        entry = self._live.pop(block_addr, None)
        if entry is not None:
            source, bucket, device = entry
        else:
            bucket = f"src/{source}"
            device = None
        if fate == "used_timely":
            table = self._used_timely
        elif fate == "used_late":
            table = self._used_late
        else:
            table = self.counters[fate]
        table[bucket] = table.get(bucket, 0) + 1
        if device is not None and fate == "evicted_unused":
            _bump(self.pollution_by_device, device)
        # Ring entries are tuples; events() rebuilds the dict form.
        self.fate_ring.append(
            (now, self.channel, block_addr, source, bucket, fate))

    def note_used(self, block_addr: int, source: Optional[str],
                  late: bool, now: int) -> None:
        """First demand touch of a prefetched block (timely or late).

        Inlines :meth:`_resolve` minus the pollution branch (a used
        block is not pollution): this is the hottest fate hook, one call
        per prefetch-served demand access.
        """
        entry = self._live.pop(block_addr, None)
        if entry is not None:
            source, bucket, _ = entry
        else:
            bucket = f"src/{source}"
        if late:
            fate = "used_late"
            table = self._used_late
        else:
            fate = "used_timely"
            table = self._used_timely
        table[bucket] = table.get(bucket, 0) + 1
        self.fate_ring.append(
            (now, self.channel, block_addr, source, bucket, fate))

    def note_evicted(self, eviction, now: int) -> None:
        """A still-unused prefetched block fell out of the cache."""
        self._resolve(eviction.tag, eviction.source, "evicted_unused", now)

    def note_invalidated(self, block_addr: int, source: Optional[str],
                         now: int = 0) -> None:
        """A still-unused prefetched block was explicitly invalidated."""
        self._resolve(block_addr, source, "invalidated", now)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        """Filled-but-unresolved prefetched blocks currently tracked."""
        return len(self._live)

    def totals(self) -> Dict[str, int]:
        """Stage totals summed over buckets, plus the resident gauge."""
        result = {name: sum(self.counters[name].values())
                  for name in _BUCKET_COUNTERS}
        result["resident"] = len(self._live)
        return result

    def bucket_table(self) -> Dict[str, Dict[str, int]]:
        """``bucket -> {stage: count}`` with zero stages omitted."""
        table: Dict[str, Dict[str, int]] = {}
        for stage in _BUCKET_COUNTERS:
            for bucket, count in self.counters[stage].items():
                table.setdefault(bucket, {})[stage] = count
        for _, bucket, _ in self._live.values():
            entry = table.setdefault(bucket, {})
            entry["resident"] = entry.get("resident", 0) + 1
        return {bucket: table[bucket] for bucket in sorted(table)}

    def snapshot_reuse(self) -> Dict[str, Any]:
        """Reuse distribution of tracked SLP snapshots.

        The histogram folds both already-evicted tracker entries and the
        still-tracked ones (non-destructively), so it always describes
        every snapshot replay seen so far.
        """
        histogram = dict(self.snapshot_reuse_histogram)
        for count in self._snapshot_uses.values():
            _bump(histogram, _reuse_bucket(count))
        return {
            "tracked": len(self._snapshot_uses),
            "histogram": {key: histogram[key]
                          for key in _REUSE_BUCKETS if key in histogram},
        }

    def summary(self) -> Dict[str, Any]:
        """The channel's full lineage accounting, JSON-ready."""
        return {
            "schema": LINEAGE_SCHEMA_VERSION,
            "channel": self.channel,
            "totals": self.totals(),
            "buckets": self.bucket_table(),
            "pollution_by_device": {
                key: self.pollution_by_device[key]
                for key in sorted(self.pollution_by_device)},
            "snapshot_reuse": self.snapshot_reuse(),
        }

    def events(self) -> List[dict]:
        """Retained fate events, oldest first."""
        return [
            {"time": time, "channel": channel, "block": block,
             "source": source, "bucket": bucket, "fate": fate}
            for time, channel, block, source, bucket, fate
            in self.fate_ring]

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "schema": LINEAGE_SCHEMA_VERSION,
            "channel": self.channel,
            "event_capacity": self.event_capacity,
            "snapshot_track_capacity": self.snapshot_track_capacity,
            "counters": {stage: dict(table)
                         for stage, table in self.counters.items()},
            "pollution_by_device": dict(self.pollution_by_device),
            "origin": dict(self._origin),
            "live": [[block, source, bucket, device]
                     for block, (source, bucket, device)
                     in self._live.items()],
            "fate_ring": self.events(),
            "snapshot_uses": [[page, bitmap, count]
                              for (page, bitmap), count
                              in self._snapshot_uses.items()],
            "snapshot_reuse_histogram": dict(self.snapshot_reuse_histogram),
        }

    def load_state(self, state: dict) -> None:
        if state.get("schema") != LINEAGE_SCHEMA_VERSION:
            raise ValueError(
                f"lineage state schema {state.get('schema')}, this build "
                f"reads version {LINEAGE_SCHEMA_VERSION}")
        self.channel = state["channel"]
        self.event_capacity = state["event_capacity"]
        self.snapshot_track_capacity = state["snapshot_track_capacity"]
        self.counters = {stage: dict(state["counters"].get(stage, {}))
                         for stage in _BUCKET_COUNTERS}
        self._bind_tables()
        self.pollution_by_device = dict(state["pollution_by_device"])
        self._origin = dict(state["origin"])
        self._live = {block: (source, bucket, device)
                      for block, source, bucket, device in state["live"]}
        self.fate_ring = deque(
            ((event["time"], event["channel"], event["block"],
              event["source"], event["bucket"], event["fate"])
             for event in state["fate_ring"]),
            maxlen=self.event_capacity)
        self._snapshot_uses = OrderedDict(
            ((page, bitmap), count)
            for page, bitmap, count in state["snapshot_uses"])
        self.snapshot_reuse_histogram = dict(
            state["snapshot_reuse_histogram"])


# ----------------------------------------------------------------------
# Wiring
# ----------------------------------------------------------------------
def wire_lineage(prefetcher, collector: Optional[LineageCollector]) -> None:
    """Point a prefetcher chain's lineage hooks at ``collector``.

    Walks the same composition attributes :func:`~repro.obs.events.wire_tracer`
    does (``inner`` wrappers, Planaria's ``slp``/``tlp``), so nested
    issue-path hooks and the throttle's suppression gate all report to
    the channel's one collector.  Pass ``None`` to unwire.
    """
    stack = [prefetcher]
    while stack:
        link = stack.pop()
        if link is None:
            continue
        link.lineage = collector
        for attr in ("inner", "slp", "tlp"):
            nested = getattr(link, attr, None)
            if nested is not None:
                stack.append(nested)


def wire_channel_lineage(channel_sim,
                         collector: Optional[LineageCollector]) -> None:
    """Install (or remove) a collector on every hook point of one
    channel: the engine, the prefetch queue, the cache backend and the
    prefetcher chain."""
    channel_sim.lineage = collector
    channel_sim.queue.lineage = collector
    channel_sim.cache.lineage = collector
    wire_lineage(channel_sim.prefetcher, collector)


def attach_lineage(simulator,
                   event_capacity: int = DEFAULT_FATE_EVENT_CAPACITY,
                   snapshot_track_capacity: int =
                   DEFAULT_SNAPSHOT_TRACK_CAPACITY) -> "SystemLineage":
    """Enable lineage collection on a live ``SystemSimulator``.

    Builds one :class:`LineageCollector` per channel and wires it into
    the channel's hook points.  Attach before driving records; attaching
    never changes simulated state or ``RunMetrics`` (the engine only
    swaps its vectorized batch loop for the bit-identical scalar loop).
    """
    for channel_sim in simulator.channels:
        wire_channel_lineage(channel_sim, LineageCollector(
            channel=channel_sim.channel,
            event_capacity=event_capacity,
            snapshot_track_capacity=snapshot_track_capacity))
    return SystemLineage(simulator)


def detach_lineage(simulator) -> None:
    """Remove every channel's collector and unwire the hooks."""
    for channel_sim in simulator.channels:
        wire_channel_lineage(channel_sim, None)


class SystemLineage:
    """System-level view over the per-channel collectors.

    Holds the *simulator*, not the channel objects: the parallel executor
    replaces ``simulator.channels`` with driven copies and the collectors
    ride along inside each pickled channel, so every query reads through
    ``simulator.channels`` at call time (same pattern as
    :class:`~repro.obs.SystemObservability`).
    """

    def __init__(self, simulator) -> None:
        self.simulator = simulator

    @property
    def collectors(self) -> List[LineageCollector]:
        return [channel_sim.lineage
                for channel_sim in self.simulator.channels
                if channel_sim.lineage is not None]

    def summary(self) -> Dict[str, Any]:
        """Per-channel summaries merged into the system accounting."""
        return merge_lineage_summaries(
            [collector.summary() for collector in self.collectors])

    def events(self) -> List[dict]:
        """All retained fate events across channels, in time order."""
        merged: List[dict] = []
        for collector in self.collectors:
            merged.extend(collector.events())
        merged.sort(key=lambda event: (event["time"], event["channel"],
                                       event["block"]))
        return merged


def merge_lineage_summaries(summaries: List[dict]) -> Dict[str, Any]:
    """Fold per-channel summaries into one system summary.

    Counter tables sum key-wise; output dict keys are sorted, so the
    merge is deterministic and identical between serial, parallel and
    served executions of the same stream.
    """
    totals: Dict[str, int] = {name: 0 for name in _BUCKET_COUNTERS}
    totals["resident"] = 0
    buckets: Dict[str, Dict[str, int]] = {}
    pollution: Dict[str, int] = {}
    reuse_tracked = 0
    reuse_histogram: Dict[str, int] = {}
    for summary in summaries:
        for name, count in summary["totals"].items():
            totals[name] = totals.get(name, 0) + count
        for bucket, stages in summary["buckets"].items():
            mine = buckets.setdefault(bucket, {})
            for stage, count in stages.items():
                mine[stage] = mine.get(stage, 0) + count
        for device, count in summary["pollution_by_device"].items():
            pollution[device] = pollution.get(device, 0) + count
        reuse = summary["snapshot_reuse"]
        reuse_tracked += reuse["tracked"]
        for key, count in reuse["histogram"].items():
            reuse_histogram[key] = reuse_histogram.get(key, 0) + count
    return {
        "schema": LINEAGE_SCHEMA_VERSION,
        "channel": -1,
        "totals": totals,
        "buckets": {bucket: buckets[bucket] for bucket in sorted(buckets)},
        "pollution_by_device": {key: pollution[key]
                                for key in sorted(pollution)},
        "snapshot_reuse": {
            "tracked": reuse_tracked,
            "histogram": {key: reuse_histogram[key]
                          for key in _REUSE_BUCKETS
                          if key in reuse_histogram},
        },
    }


def lineage_consistent(summary: dict) -> bool:
    """The accounting invariants, evaluated on a (merged) summary."""
    totals = summary["totals"]
    gates = (totals["accepted"] + totals["dropped_duplicate"]
             + totals["dropped_degree"] + totals["dropped_full"]
             + totals["suppressed"])
    dispositions = (totals["skipped_resident"]
                    + totals["discarded_unfilled"] + totals["filled"])
    fates = (totals["used_timely"] + totals["used_late"]
             + totals["evicted_unused"] + totals["invalidated"]
             + totals["resident"])
    return (totals["issued"] == gates
            and totals["accepted"] == dispositions
            and totals["filled"] == fates)


# ----------------------------------------------------------------------
# Chrome-trace fate export
# ----------------------------------------------------------------------
def fate_events_to_chrome(events: List[dict]) -> dict:
    """Fate events as Chrome-trace instant events (``chrome://tracing``).

    Simulated cycles map to the ``ts`` microsecond axis 1:1; one thread
    row per channel.
    """
    trace_events = []
    for event in events:
        trace_events.append({
            "name": f"fate:{event['fate']}",
            "cat": "lineage",
            "ph": "i",
            "s": "t",
            "ts": event["time"],
            "pid": 0,
            "tid": event["channel"],
            "args": {"block": event["block"], "source": event["source"],
                     "bucket": event["bucket"]},
        })
    return {"traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {"format": "planaria-lineage-fates",
                          "version": LINEAGE_SCHEMA_VERSION}}


def write_fate_trace(path, events: List[dict]):
    """Write fate events as a Chrome-trace JSON file; returns the path."""
    import json
    from pathlib import Path

    path = Path(path)
    path.write_text(json.dumps(fate_events_to_chrome(events), indent=1),
                    encoding="utf-8")
    return path
