"""Span-based request tracing for the streaming service.

Timelines answer "how much, when" and events answer "what happened";
spans answer **"why was *this* request slow"**.  A :class:`SpanRecord`
is one timed operation — a protocol decode, a backpressure wait, one
chunk's engine run — carrying a ``trace_id`` shared by every span of one
logical request, a unique ``span_id``, and the ``parent_id`` of the span
that caused it.  The service threads trace context through the whole
serve path (client request → decode → FIFO/backpressure wait → per-chunk
``feed()`` → engine run → reply encode) and over the wire protocol, so a
Perfetto view of one trace shows the full causal chain.

The :class:`SpanRecorder` keeps a bounded ring of completed spans plus
**per-span-name latency aggregates** in the same Welford/Histogram
machinery the simulator uses (:mod:`repro.utils.statistics`), so p50/p95/
p99 per operation fall out of the recorder without retaining unbounded
span lists.

Hot-path contract (mirrors :mod:`repro.obs.events`): every recording
site guards with ``spans.enabled`` (or ``spans is None``) before doing
any work, recording happens at *chunk/request* granularity — never per
record — and the disabled configuration is the shared
:data:`NULL_SPANS` singleton, so tracing off costs one attribute load
and one branch per chunk.  Spans measure wall-clock only and never touch
simulator state, so ``RunMetrics`` and epoch timelines are bit-identical
with tracing on or off (``tests/test_obs_spans.py``).

Export: :func:`spans_to_chrome` renders the Chrome trace-event JSON
format (viewable in Perfetto / ``chrome://tracing``); the conversion is
lossless and :func:`chrome_to_spans` inverts it exactly.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Union

from repro.utils.statistics import Histogram, RunningStats

PathLike = Union[str, Path]

#: Bump on any incompatible change to the SpanRecord layout.
SPAN_SCHEMA_VERSION = 1

#: Default ring capacity of completed spans (aggregates are unbounded).
DEFAULT_SPAN_CAPACITY = 4096

#: Histogram bucket width for per-name latency aggregation, microseconds.
SPAN_BUCKET_US = 50.0

#: Span attribute keys reserved for trace identity in the Chrome export.
RESERVED_ATTR_KEYS = ("trace_id", "span_id", "parent_id")

#: Canonical span names along the serve path (docs/observability.md).
SPAN_REQUEST_PREFIX = "request."     # request.<op>, one per protocol frame
SPAN_DECODE = "request.decode"       # frame read + header/payload decode
SPAN_ENCODE = "request.encode"       # response encode + socket write
SPAN_FIFO_WAIT = "session.fifo_wait"  # blocked on max_inflight_chunks
SPAN_FEED_CHUNK = "session.feed_chunk"  # one chunk through the drainer
SPAN_ENGINE_FEED = "engine.feed"     # SystemSimulator.feed body
SPAN_ENGINE_RUN = "engine.run"       # SystemSimulator.run body
SPAN_CLIENT_PREFIX = "client."       # client.<op>, request round trip
SPAN_ROUTER_FORWARD = "router.forward"  # router→worker hop, one per proxied request
SPAN_ROUTER_MIGRATE = "router.migrate"  # checkpoint-based session migration


def now_us() -> int:
    """The recorder's time base: monotonic microseconds."""
    return time.monotonic_ns() // 1000


def new_id() -> str:
    """A fresh 64-bit hex id for traces and spans."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanRecord:
    """One completed timed operation.

    Attributes:
        trace_id: shared by every span of one logical request.
        span_id: unique per span.
        parent_id: the causing span, or ``None`` for a root span.
        name: operation name (see the ``SPAN_*`` constants).
        start_us: start time, microseconds on the recorder's monotonic
            clock.
        duration_us: inclusive duration in microseconds.
        tid: small interned ordinal of the recording thread — same-thread
            spans nest by time containment in trace viewers.
        attrs: JSON-safe scalars only; the keys in
            :data:`RESERVED_ATTR_KEYS` are stripped at recording time.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_us: int
    duration_us: int
    tid: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_us(self) -> int:
        return self.start_us + self.duration_us

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        known = {field_.name for field_ in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown SpanRecord fields: {sorted(unknown)}")
        return cls(**payload)


class _OpenSpan:
    """A begun-but-unfinished span (internal to the recorder)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_us",
                 "tid", "attrs", "attached")

    def __init__(self, trace_id: str, span_id: str, parent_id: Optional[str],
                 name: str, start_us: int, tid: int, attrs: Dict[str, Any],
                 attached: bool) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_us = start_us
        self.tid = tid
        self.attrs = attrs
        self.attached = attached


def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    if any(key in attrs for key in RESERVED_ATTR_KEYS):
        return {key: value for key, value in attrs.items()
                if key not in RESERVED_ATTR_KEYS}
    return attrs


class SpanRecorder:
    """Thread-safe span collector with per-name latency aggregates.

    Completed spans land in a bounded ring (``capacity``; old spans fall
    off the front — ``started``/``finished`` counters stay exact).  Per
    span name the recorder maintains one
    :class:`~repro.utils.statistics.RunningStats` (Welford mean/stddev/
    min/max) and one :class:`~repro.utils.statistics.Histogram`
    (:data:`SPAN_BUCKET_US`-wide buckets) of durations, so tail
    percentiles survive ring eviction.

    Same-thread nesting is automatic: :meth:`begin` without an explicit
    ``trace_id`` inherits trace and parent from the innermost open span
    on the current thread.  Spans begun with ``detached=True`` never
    join the thread's stack — the right mode for async code where many
    requests interleave on one event-loop thread and parentage must be
    explicit.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._spans: Deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._thread_ids: Dict[int, int] = {}
        self.stats: Dict[str, RunningStats] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.started = 0
        self.finished = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._thread_ids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._thread_ids.setdefault(ident,
                                                  len(self._thread_ids))
        return tid

    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def begin(self, name: str, trace_id: Optional[str] = None,
              parent_id: Optional[str] = None, detached: bool = False,
              **attrs: Any) -> _OpenSpan:
        """Open a span; finish it with :meth:`end`.

        Without an explicit ``trace_id``, the span joins the innermost
        open span on this thread (inheriting its trace and becoming its
        child) or starts a fresh trace.  ``detached`` spans never join
        the thread stack (explicit parenting only).
        """
        if trace_id is None:
            stack = self._stack()
            if stack:
                trace_id = stack[-1].trace_id
                if parent_id is None:
                    parent_id = stack[-1].span_id
            else:
                trace_id = new_id()
        span = _OpenSpan(trace_id, new_id(), parent_id, name, now_us(),
                         self._tid(), _clean_attrs(attrs), not detached)
        with self._lock:
            self.started += 1
        if span.attached:
            self._stack().append(span)
        return span

    def end(self, span: _OpenSpan, **attrs: Any) -> SpanRecord:
        """Close a span, folding its duration into the aggregates."""
        duration = max(0, now_us() - span.start_us)
        if span.attached:
            stack = self._stack()
            if span in stack:
                stack.remove(span)
        if attrs:
            span.attrs = {**span.attrs, **_clean_attrs(attrs)}
        record = SpanRecord(
            trace_id=span.trace_id, span_id=span.span_id,
            parent_id=span.parent_id, name=span.name,
            start_us=span.start_us, duration_us=duration,
            tid=span.tid, attrs=span.attrs)
        self._finish(record)
        return record

    @contextmanager
    def span(self, name: str, trace_id: Optional[str] = None,
             parent_id: Optional[str] = None, detached: bool = False,
             **attrs: Any):
        """``with recorder.span("engine.feed", records=n): ...``"""
        open_span = self.begin(name, trace_id=trace_id, parent_id=parent_id,
                               detached=detached, **attrs)
        try:
            yield open_span
        finally:
            self.end(open_span)

    def record(self, name: str, start_us: int, duration_us: int,
               trace_id: Optional[str] = None,
               parent_id: Optional[str] = None,
               span_id: Optional[str] = None,
               **attrs: Any) -> SpanRecord:
        """Record an already-measured span with explicit timing.

        For stages whose trace identity is only known after the fact
        (e.g. protocol decode: the trace context lives inside the frame
        being decoded) and for counted waits measured inline.  A caller
        that pre-generated ids so child spans could link before the
        parent was recorded passes the parent's ``span_id`` explicitly.
        """
        if duration_us < 0:
            raise ValueError(f"duration_us must be >= 0, got {duration_us}")
        record = SpanRecord(
            trace_id=trace_id or new_id(), span_id=span_id or new_id(),
            parent_id=parent_id, name=name, start_us=start_us,
            duration_us=duration_us, tid=self._tid(),
            attrs=_clean_attrs(attrs))
        with self._lock:
            self.started += 1
        self._finish(record)
        return record

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self.finished += 1
            self._spans.append(record)
            stats = self.stats.get(record.name)
            if stats is None:
                stats = self.stats[record.name] = RunningStats()
                self.histograms[record.name] = Histogram(SPAN_BUCKET_US)
            stats.add(record.duration_us)
            self.histograms[record.name].add(record.duration_us)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans(self, clear: bool = False) -> List[SpanRecord]:
        """The retained spans, oldest first; optionally drain the ring.

        ``clear`` empties only the ring — the per-name aggregates and
        the ``started``/``finished`` counters keep accumulating, so
        repeated drains still report lifetime percentiles.
        """
        with self._lock:
            retained = list(self._spans)
            if clear:
                self._spans.clear()
        return retained

    def percentiles(self, name: str) -> Dict[str, float]:
        """p50/p95/p99 bucket lower bounds for one span name, in µs."""
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                return {"p50_us": 0.0, "p95_us": 0.0, "p99_us": 0.0}
            return {"p50_us": histogram.percentile(0.50),
                    "p95_us": histogram.percentile(0.95),
                    "p99_us": histogram.percentile(0.99)}

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name latency summary: count, mean/max, p50/p95/p99 (µs)."""
        with self._lock:
            names = sorted(self.stats)
            out: Dict[str, Dict[str, float]] = {}
            for name in names:
                stats = self.stats[name]
                histogram = self.histograms[name]
                out[name] = {
                    "count": stats.count,
                    "mean_us": stats.mean,
                    "max_us": stats.max if stats.max is not None else 0.0,
                    "p50_us": histogram.percentile(0.50),
                    "p95_us": histogram.percentile(0.95),
                    "p99_us": histogram.percentile(0.99),
                }
        return out

    def histogram_for(self, name: str) -> Optional[Histogram]:
        """The live duration histogram for one span name (or None)."""
        with self._lock:
            return self.histograms.get(name)

    def __len__(self) -> int:
        return len(self._spans)


class _NullSpanRecorder:
    """Shared no-op recorder: the tracing-disabled default.

    ``enabled`` is False, so guarded sites never build attrs or read the
    clock; the methods exist for unguarded callers.  Pickling anywhere
    resolves back to the singleton.
    """

    __slots__ = ()
    enabled = False

    def begin(self, name: str, **kwargs: Any) -> None:
        return None

    def end(self, span: Any, **attrs: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, **kwargs: Any):
        yield None

    def record(self, name: str, start_us: int, duration_us: int,
               **kwargs: Any) -> None:
        pass

    def spans(self, clear: bool = False) -> List[SpanRecord]:
        return []

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {}

    def __len__(self) -> int:
        return 0

    def __reduce__(self):
        return (_resolve_null_spans, ())


def _resolve_null_spans() -> "_NullSpanRecorder":
    return NULL_SPANS


NULL_SPANS = _NullSpanRecorder()


# ----------------------------------------------------------------------
# Chrome trace-event export (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
#: First token of the exported file's ``otherData`` stamp.
CHROME_FORMAT = "planaria-spans"


def spans_to_chrome(spans: Sequence[SpanRecord],
                    process_name: str = "repro-service",
                    pid: int = 0) -> dict:
    """Render spans as Chrome trace-event JSON (lossless).

    Every span becomes one complete (``"ph": "X"``) event; trace/span/
    parent ids ride in ``args`` next to the span's own attributes, which
    is exactly how Perfetto surfaces them in the slice details pane.
    Same-``tid`` spans nest by time containment (the recorder stamps the
    recording thread, so synchronous call chains — feed chunk → engine
    run — render as nested slices); cross-thread causality is the
    ``parent_id`` link.
    """
    events: List[dict] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": process_name},
    }]
    for span in spans:
        args = dict(span.attrs)
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name, "cat": "service", "ph": "X",
            "ts": span.start_us, "dur": span.duration_us,
            "pid": pid, "tid": span.tid, "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": CHROME_FORMAT,
                      "version": SPAN_SCHEMA_VERSION},
    }


def chrome_to_spans(payload: dict) -> List[SpanRecord]:
    """Rebuild the span list from :func:`spans_to_chrome` output."""
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a Chrome trace-event document "
                         "(missing traceEvents)")
    spans: List[SpanRecord] = []
    for event in events:
        if event.get("ph") != "X":
            continue  # metadata / instant events carry no span
        args = dict(event.get("args", {}))
        trace_id = args.pop("trace_id")
        span_id = args.pop("span_id")
        parent_id = args.pop("parent_id", None)
        spans.append(SpanRecord(
            trace_id=trace_id, span_id=span_id, parent_id=parent_id,
            name=event["name"], start_us=event["ts"],
            duration_us=event["dur"], tid=event.get("tid", 0), attrs=args))
    return spans


def write_chrome_trace(path: PathLike, spans: Sequence[SpanRecord],
                       process_name: str = "repro-service") -> Path:
    """Write spans as a ``.json`` Chrome trace, loadable in Perfetto."""
    path = Path(path)
    payload = spans_to_chrome(spans, process_name=process_name)
    path.write_text(json.dumps(payload, separators=(",", ":")) + "\n",
                    encoding="utf-8")
    return path


def read_chrome_trace(path: PathLike) -> List[SpanRecord]:
    """Inverse of :func:`write_chrome_trace`."""
    return chrome_to_spans(json.loads(Path(path).read_text(encoding="utf-8")))
