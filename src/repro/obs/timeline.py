"""Epoch-sliced metric timelines for one run.

The :class:`TimelineCollector` slices a channel's record stream into
fixed-size epochs (``epoch_records`` accesses each) and snapshots, at
every boundary, the *delta* of every counter the run accumulates —
cache hit/miss split, demand metrics, per-device read latency, DRAM
queue/bank traffic, prefetch-queue accounting, and the SLP-vs-TLP issue
split with the coordinator's arbitration counts.  One epoch is one
:class:`EpochRecord`; the whole run is a list of them.

Everything here is **read-only with respect to the simulation**: the
collector computes deltas of cumulative counters the engine maintains
anyway, so enabling collection never changes ``RunMetrics`` (asserted
by ``tests/test_obs_timeline.py``).  Collection cost is one
:func:`capture_channel` pass (~60 scalar reads) per epoch boundary, not
per record.

Determinism: epochs are positions in the *channel's* stream, so any
chunking of the stream — offline one-shot, streaming ``feed`` chunks,
or the parallel executor's per-channel processes — closes the same
epochs with bit-identical contents.  :func:`merge_timelines` folds
per-channel timelines into the system view by epoch index, in fixed
channel order, so the merged timeline is bit-identical between serial
and parallel execution.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.events import EventTracer, NULL_TRACER, wire_tracer

#: Bump on any incompatible change to the EpochRecord layout.
TIMELINE_SCHEMA_VERSION = 1

#: Default epoch size — coarse enough that a capture pass per boundary
#: is noise (~60 scalar reads / 1024 records), fine enough to resolve
#: workload phases at the bundled trace lengths.
DEFAULT_EPOCH_RECORDS = 1024


@dataclass
class EpochRecord:
    """Deltas of one epoch of one channel (or the merged system view).

    Counter fields are epoch deltas; fields documented *instantaneous*
    are sampled at the epoch's closing boundary (summed across channels
    in the merged view — e.g. ``throttle_suspended`` then counts
    currently-suspended channels).  ``channel`` is -1 for merged epochs.
    """

    epoch: int
    channel: int
    start_record: int
    end_record: int
    start_time: int
    end_time: int
    # Demand path (cache split + post-warmup metric deltas).
    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    delayed_hits: int = 0
    demand_reads: int = 0
    demand_writes: int = 0
    read_latency_total: float = 0.0
    # Prefetch path.
    prefetch_fills: int = 0
    prefetch_useful: int = 0
    prefetch_late: int = 0
    prefetch_unused_evicted: int = 0
    queue_accepted: int = 0
    queue_dropped: int = 0
    queue_depth: int = 0  # instantaneous
    # DRAM queue/bank activity.
    dram_demand_reads: int = 0
    dram_demand_writes: int = 0
    dram_prefetch_reads: int = 0
    dram_writebacks: int = 0
    dram_activates: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    dram_row_conflicts: int = 0
    dram_refreshes: int = 0
    dram_data_bus_cycles: int = 0
    dram_queue_stalls: int = 0
    dram_outstanding: int = 0  # instantaneous
    # Cache residency (instantaneous).
    cache_occupancy: int = 0
    resident_prefetches: int = 0
    # SLP / TLP split + coordinator arbitration (zero for non-Planaria).
    slp_issued: int = 0
    tlp_issued: int = 0
    coord_slp_issued: int = 0
    coord_tlp_fallback: int = 0
    coord_neither: int = 0
    # Throttle wrapper (zero when not wrapped).
    throttle_suspensions: int = 0
    throttle_suspended: int = 0  # instantaneous
    # Attribution tables.
    useful_by_source: Dict[str, int] = field(default_factory=dict)
    fills_by_source: Dict[str, int] = field(default_factory=dict)
    device_reads: Dict[str, int] = field(default_factory=dict)
    device_read_latency_total: Dict[str, float] = field(default_factory=dict)
    # Per-tenant demand attribution (epoch deltas of
    # ``MetricSet.device_demand``; defaults keep schema version 1
    # loading pre-tenancy payloads).
    device_accesses: Dict[str, int] = field(default_factory=dict)
    device_hits: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived per-epoch figures
    # ------------------------------------------------------------------
    @property
    def records(self) -> int:
        return self.end_record - self.start_record

    @property
    def hit_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    @property
    def amat(self) -> float:
        """Mean demand-read latency within this epoch (post-warmup)."""
        if self.demand_reads == 0:
            return 0.0
        return self.read_latency_total / self.demand_reads

    @property
    def accuracy(self) -> float:
        """Within-epoch useful-prefetch fraction of this epoch's fills."""
        if self.prefetch_fills == 0:
            return 0.0
        return self.prefetch_useful / self.prefetch_fills

    @property
    def coverage(self) -> float:
        base = self.prefetch_useful + self.demand_misses
        return self.prefetch_useful / base if base else 0.0

    def source_accuracy(self, source: str) -> float:
        """Useful/fills for one sub-prefetcher within this epoch."""
        fills = self.fills_by_source.get(source, 0)
        if fills == 0:
            return 0.0
        return self.useful_by_source.get(source, 0) / fills

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "EpochRecord":
        known = {field_.name for field_ in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown EpochRecord fields: {sorted(unknown)}")
        return cls(**payload)


def _chain(prefetcher) -> List[Any]:
    """A prefetcher and its wrapped inners, outermost first."""
    chain = [prefetcher]
    while True:
        inner = getattr(chain[-1], "inner", None)
        if inner is None:
            return chain
        chain.append(inner)


def capture_channel(sim) -> dict:
    """One cumulative counter snapshot of a :class:`ChannelSimulator`.

    Pure reads — the capture never touches simulator state.  Welford
    aggregates are captured as (count, total=mean*count) pairs so epoch
    deltas are plain subtractions; identical simulator states produce
    bit-identical captures, which is what makes serial/parallel and
    offline/streaming timelines comparable with ``==``.
    """
    metrics = sim.metrics
    cache_stats = sim.cache.stats
    dram = sim.dram
    dram_stats = dram.stats
    read_latency = metrics.read_latency
    snapshot = {
        "records_seen": sim._records_seen,
        "last_time": sim._last_time,
        "demand_reads": metrics.demand_reads,
        "demand_writes": metrics.demand_writes,
        "read_latency_total": read_latency.mean * read_latency.count,
        "demand_accesses": cache_stats.demand_accesses,
        "demand_hits": cache_stats.demand_hits,
        "demand_misses": cache_stats.demand_misses,
        "delayed_hits": cache_stats.delayed_hits,
        "prefetch_fills": cache_stats.prefetch_fills,
        "prefetch_useful": cache_stats.useful_total(),
        "prefetch_late": sum(cache_stats.prefetch_late.values()),
        "prefetch_unused_evicted": cache_stats.unused_total(),
        "useful_by_source": dict(cache_stats.prefetch_useful),
        "queue_accepted": sim.queue.stats.accepted,
        "queue_dropped": sim.queue.stats.dropped_total(),
        "queue_depth": len(sim.queue),
        "dram_demand_reads": dram_stats.demand_reads,
        "dram_demand_writes": dram_stats.demand_writes,
        "dram_prefetch_reads": dram_stats.prefetch_reads,
        "dram_writebacks": dram_stats.writebacks,
        "dram_activates": dram_stats.activates,
        "dram_row_hits": dram_stats.row_hits,
        "dram_row_misses": dram_stats.row_misses,
        "dram_row_conflicts": dram_stats.row_conflicts,
        "dram_refreshes": dram_stats.refreshes,
        "dram_data_bus_cycles": dram_stats.data_bus_cycles,
        "dram_queue_stalls": dram.stats_queue_stalls,
        "dram_outstanding": dram.outstanding_requests(),
        "fills_by_source": dict(dram_stats.prefetch_reads_by_source),
        "cache_occupancy": sim.cache.occupancy(),
        "resident_prefetches": sim.cache.resident_prefetches(),
        "device_reads": {
            device: stats.count
            for device, stats in metrics.device_read_latency.items()},
        "device_read_latency_total": {
            device: stats.mean * stats.count
            for device, stats in metrics.device_read_latency.items()},
        "device_accesses": {
            device: counts[0]
            for device, counts in metrics.device_demand.items()},
        "device_hits": {
            device: counts[1]
            for device, counts in metrics.device_demand.items()},
    }
    slp_issued = tlp_issued = 0
    coord_slp = coord_tlp = coord_neither = 0
    suspensions = 0
    suspended = 0
    for link in _chain(sim.prefetcher):
        slp_issued += getattr(link, "slp_issues", 0)
        tlp_issued += getattr(link, "tlp_issues", 0)
        coord_slp += getattr(link, "coord_slp_issued", 0)
        coord_tlp += getattr(link, "coord_tlp_fallback", 0)
        coord_neither += getattr(link, "coord_neither", 0)
        suspensions += getattr(link, "suspensions", 0)
        suspended += 1 if getattr(link, "suspended", False) else 0
    snapshot.update(
        slp_issued=slp_issued, tlp_issued=tlp_issued,
        coord_slp_issued=coord_slp, coord_tlp_fallback=coord_tlp,
        coord_neither=coord_neither,
        throttle_suspensions=suspensions,
        throttle_suspended=suspended,
    )
    return snapshot


#: Capture keys sampled at the boundary rather than differenced.
_INSTANT_KEYS = ("queue_depth", "dram_outstanding", "cache_occupancy",
                 "resident_prefetches", "throttle_suspended")
#: Capture keys handled explicitly by :func:`_delta_epoch`.
_SPECIAL_KEYS = _INSTANT_KEYS + (
    "records_seen", "last_time", "useful_by_source", "fills_by_source",
    "device_reads", "device_read_latency_total", "device_accesses",
    "device_hits")


def _dict_delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    delta = {}
    for key, value in after.items():
        change = value - before.get(key, 0)
        if change:
            delta[key] = change
    return delta


def _delta_epoch(before: dict, after: dict, epoch: int,
                 channel: int) -> EpochRecord:
    """The :class:`EpochRecord` between two cumulative captures."""
    fields: Dict[str, Any] = {
        "epoch": epoch,
        "channel": channel,
        "start_record": before["records_seen"],
        "end_record": after["records_seen"],
        "start_time": before["last_time"],
        "end_time": after["last_time"],
        "useful_by_source": _dict_delta(before["useful_by_source"],
                                        after["useful_by_source"]),
        "fills_by_source": _dict_delta(before["fills_by_source"],
                                       after["fills_by_source"]),
        "device_reads": _dict_delta(before["device_reads"],
                                    after["device_reads"]),
        "device_read_latency_total": _dict_delta(
            before["device_read_latency_total"],
            after["device_read_latency_total"]),
        "device_accesses": _dict_delta(before.get("device_accesses", {}),
                                       after.get("device_accesses", {})),
        "device_hits": _dict_delta(before.get("device_hits", {}),
                                   after.get("device_hits", {})),
    }
    for key in _INSTANT_KEYS:
        fields[key] = after[key]
    for key, value in after.items():
        if key not in _SPECIAL_KEYS:
            fields[key] = value - before[key]
    return EpochRecord(**fields)


class TimelineCollector:
    """Per-channel epoch collector, attached as ``ChannelSimulator.obs``.

    The engine's observed run path calls :meth:`begin` once per chunk
    and :meth:`close_epoch` at every epoch boundary; everything else is
    offline queries.  The collector travels with its channel simulator
    through pickling (parallel executor) and ``state_dict`` round trips.
    """

    def __init__(self, channel: int,
                 epoch_records: int = DEFAULT_EPOCH_RECORDS,
                 tracer: Optional[EventTracer] = None) -> None:
        if epoch_records < 1:
            raise ValueError(
                f"epoch_records must be >= 1, got {epoch_records}")
        self.channel = channel
        self.epoch_records = epoch_records
        self.tracer = tracer
        self.epochs: List[EpochRecord] = []
        self._baseline: Optional[dict] = None

    def begin(self, sim) -> None:
        """Fix the first epoch's baseline (no-op once bound)."""
        if self._baseline is None:
            self._baseline = capture_channel(sim)

    def close_epoch(self, sim) -> None:
        """Snapshot the epoch that just ended; advance the baseline."""
        current = capture_channel(sim)
        self.epochs.append(_delta_epoch(self._baseline, current,
                                        len(self.epochs), self.channel))
        self._baseline = current

    def partial_epoch(self, sim) -> Optional[EpochRecord]:
        """The in-progress epoch's delta so far, without closing it.

        Non-destructive, so a live service query mid-epoch and the
        post-hoc offline dump of the same records agree.
        """
        if self._baseline is None:
            return None
        current = capture_channel(sim)
        if current["records_seen"] == self._baseline["records_seen"]:
            return None
        return _delta_epoch(self._baseline, current,
                            len(self.epochs), self.channel)

    def timeline(self, sim=None,
                 include_partial: bool = False) -> List[EpochRecord]:
        epochs = list(self.epochs)
        if include_partial and sim is not None:
            partial = self.partial_epoch(sim)
            if partial is not None:
                epochs.append(partial)
        return epochs

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "channel": self.channel,
            "epoch_records": self.epoch_records,
            "epochs": [epoch.to_dict() for epoch in self.epochs],
            "baseline": (dict(self._baseline)
                         if self._baseline is not None else None),
            "tracer": (self.tracer.state_dict()
                       if self.tracer is not None else None),
        }

    def load_state(self, state: dict) -> None:
        self.channel = state["channel"]
        self.epoch_records = state["epoch_records"]
        self.epochs = [EpochRecord.from_dict(payload)
                       for payload in state["epochs"]]
        baseline = state["baseline"]
        self._baseline = dict(baseline) if baseline is not None else None
        if self.tracer is not None and state["tracer"] is not None:
            self.tracer.load_state(state["tracer"])

    def rewire(self, sim) -> None:
        """Re-point the channel's prefetcher chain at this collector's
        tracer.  Needed after a prefetcher state restore: ``load_state``
        replaces nested sub-prefetcher objects, whose ``tracer``
        references would otherwise be orphan deep copies and their
        events lost."""
        wire_tracer(sim.prefetcher,
                    self.tracer if self.tracer is not None else NULL_TRACER)


def _merge_into(target: EpochRecord, part: EpochRecord) -> None:
    target.start_record += part.start_record
    target.end_record += part.end_record
    target.start_time = min(target.start_time, part.start_time)
    target.end_time = max(target.end_time, part.end_time)
    for field_ in dataclasses.fields(EpochRecord):
        name = field_.name
        if name in ("epoch", "channel", "start_record", "end_record",
                    "start_time", "end_time"):
            continue
        value = getattr(part, name)
        if isinstance(value, dict):
            mine = getattr(target, name)
            for key, count in value.items():
                mine[key] = mine.get(key, 0) + count
        else:
            setattr(target, name, getattr(target, name) + value)


def merge_timelines(
        channel_timelines: Sequence[List[EpochRecord]]) -> List[EpochRecord]:
    """Fold per-channel timelines into the merged system timeline.

    Epochs align by index; channels whose stream ended earlier simply
    stop contributing (their shorter timeline is exhausted).  Counter
    fields sum, times span min(start)..max(end), record positions sum
    across channels.  Channel order is the caller's fixed channel order,
    so the merge is deterministic and serial/parallel bit-identical.
    """
    merged: List[EpochRecord] = []
    for timeline in channel_timelines:
        for index, part in enumerate(timeline):
            if index == len(merged):
                clone = EpochRecord.from_dict(part.to_dict())
                clone.channel = -1
                merged.append(clone)
            else:
                _merge_into(merged[index], part)
    return merged
