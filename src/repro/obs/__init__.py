"""Observability: epoch timelines, event tracing, live export.

The subsystem is opt-in and zero-cost when off (the default): the engine
checks one ``obs`` attribute per *chunk*, prefetcher trace points check
one shared no-op singleton per *rare-path event* — nothing touches the
per-record demand loop.  See ``docs/observability.md``.

Typical offline use::

    from repro.obs import attach_observability
    from repro.sim.runner import simulate

    result = simulate(trace, "planaria")          # plain run, or:
    sim = SystemSimulator(config, factory)
    obs = attach_observability(sim, epoch_records=1024)
    sim.run(trace)
    for epoch in obs.merged_timeline():
        print(epoch.epoch, epoch.hit_rate, epoch.amat)

Streaming sessions enable the same machinery by opening with
``epoch_records=N`` and polling the service's ``timeline`` op (or
``repro watch``); the live epochs are bit-identical to the post-hoc
offline dump of the same records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.obs.events import (EVENT_KINDS, EVENT_SCHEMA_VERSION, EventTracer,
                              NULL_TRACER, TraceEvent, merge_events,
                              wire_tracer)
from repro.obs.health import (HEALTH_SCHEMA_VERSION, DetectorVerdict,
                              HealthConfig, HealthEngine, HealthReport)
from repro.obs.lineage import (LINEAGE_SCHEMA_VERSION, LineageCollector,
                               SystemLineage, attach_lineage, detach_lineage,
                               fate_events_to_chrome, lineage_consistent,
                               merge_lineage_summaries, wire_lineage,
                               write_fate_trace)
from repro.obs.timeline import (DEFAULT_EPOCH_RECORDS,
                                TIMELINE_SCHEMA_VERSION, EpochRecord,
                                TimelineCollector, capture_channel,
                                merge_timelines)
from repro.obs.trace_spans import (NULL_SPANS, SPAN_SCHEMA_VERSION,
                                   SpanRecord, SpanRecorder, spans_to_chrome,
                                   chrome_to_spans, write_chrome_trace)

__all__ = [
    "DEFAULT_EPOCH_RECORDS", "EVENT_KINDS", "EVENT_SCHEMA_VERSION",
    "HEALTH_SCHEMA_VERSION", "LINEAGE_SCHEMA_VERSION",
    "SPAN_SCHEMA_VERSION", "DetectorVerdict", "EpochRecord", "EventTracer",
    "HealthConfig", "HealthEngine", "HealthReport", "LineageCollector",
    "NULL_SPANS", "NULL_TRACER", "ObsConfig", "SpanRecord", "SpanRecorder",
    "SystemLineage", "SystemObservability", "TIMELINE_SCHEMA_VERSION",
    "TimelineCollector", "TraceEvent", "attach_lineage",
    "attach_observability", "capture_channel", "chrome_to_spans",
    "detach_lineage", "detach_observability", "fate_events_to_chrome",
    "lineage_consistent", "merge_events", "merge_lineage_summaries",
    "merge_timelines", "spans_to_chrome", "wire_lineage",
    "write_chrome_trace", "write_fate_trace",
]

#: Default ring-buffer capacity per channel tracer.
DEFAULT_EVENT_CAPACITY = 1024


@dataclass(frozen=True)
class ObsConfig:
    """Collection knobs shared by CLI, service and benchmark entry points."""

    epoch_records: int = DEFAULT_EPOCH_RECORDS
    event_capacity: int = DEFAULT_EVENT_CAPACITY
    event_sample_interval: int = 1
    events: bool = True


def attach_observability(simulator, config: Optional[ObsConfig] = None,
                         **overrides) -> "SystemObservability":
    """Enable timeline + event collection on a live ``SystemSimulator``.

    Builds one :class:`TimelineCollector` (and, unless ``events=False``,
    one :class:`EventTracer`) per channel, installs them as each
    ``ChannelSimulator.obs`` hook, and returns the system-level handle.
    Attach *before* driving records; attaching never changes simulated
    state or ``RunMetrics``.  Keyword overrides update :class:`ObsConfig`
    fields (``epoch_records=...`` etc.).
    """
    if config is None:
        config = ObsConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config or keyword overrides, not both")
    for channel_sim in simulator.channels:
        tracer = None
        if config.events:
            tracer = EventTracer(
                channel=channel_sim.channel,
                capacity=config.event_capacity,
                sample_interval=config.event_sample_interval)
            wire_tracer(channel_sim.prefetcher, tracer)
        collector = TimelineCollector(
            channel=channel_sim.channel,
            epoch_records=config.epoch_records,
            tracer=tracer)
        channel_sim.obs = collector
        collector.begin(channel_sim)
    return SystemObservability(simulator, config)


def detach_observability(simulator) -> None:
    """Remove collectors and restore the shared no-op tracer."""
    for channel_sim in simulator.channels:
        channel_sim.obs = None
        wire_tracer(channel_sim.prefetcher, NULL_TRACER)


class SystemObservability:
    """System-level view over the per-channel collectors.

    Holds the *simulator*, not the channel objects — the parallel
    executor replaces ``simulator.channels`` with driven copies, and the
    collectors ride along inside each pickled channel, so every query
    reads through ``simulator.channels`` at call time.
    """

    def __init__(self, simulator, config: ObsConfig) -> None:
        self.simulator = simulator
        self.config = config
        #: Session/system-scope events (checkpoint/restore); channel -1.
        self.system_tracer = EventTracer(
            channel=-1, capacity=config.event_capacity,
            sample_interval=1)

    @property
    def collectors(self) -> List[TimelineCollector]:
        return [channel_sim.obs for channel_sim in self.simulator.channels
                if channel_sim.obs is not None]

    def channel_timelines(
            self, include_partial: bool = False) -> List[List[EpochRecord]]:
        """Per-channel epoch lists, in channel order."""
        timelines = []
        for channel_sim in self.simulator.channels:
            collector = channel_sim.obs
            if collector is None:
                timelines.append([])
            else:
                timelines.append(collector.timeline(
                    channel_sim, include_partial=include_partial))
        return timelines

    def merged_timeline(
            self, include_partial: bool = True) -> List[EpochRecord]:
        """The system timeline: per-channel epochs merged by index."""
        return merge_timelines(
            self.channel_timelines(include_partial=include_partial))

    def events(self) -> List[TraceEvent]:
        """All retained events, channels + system, in time order."""
        tracers = [collector.tracer for collector in self.collectors
                   if collector.tracer is not None]
        tracers.append(self.system_tracer)
        return merge_events(tracers)

    def event_counts(self) -> dict:
        """Attempted emissions per kind, summed over all tracers."""
        counts: dict = {}
        tracers = [collector.tracer for collector in self.collectors
                   if collector.tracer is not None]
        tracers.append(self.system_tracer)
        for tracer in tracers:
            for kind, count in tracer.emitted.items():
                counts[kind] = counts.get(kind, 0) + count
        return counts
