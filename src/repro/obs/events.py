"""Structured event tracing: a bounded, optionally sampled ring buffer.

Timelines (:mod:`repro.obs.timeline`) answer "how much, when"; events
answer "what happened".  An :class:`EventTracer` records *rare-path*
simulator occurrences — an SLP snapshot completing, a PHT pattern being
evicted, a TLP neighbour borrow, a throttle state flip, a checkpoint —
as typed :class:`TraceEvent` records with a stable schema, into a ring
buffer bounded by ``capacity`` (old events fall off the front).

Hot-path contract: every emission site guards with ``tracer.enabled``
before building the event payload, and the default tracer on every
prefetcher is the shared :data:`NULL_TRACER` singleton whose ``enabled``
is ``False`` — a disabled trace point costs one attribute load and one
branch, on paths that are already off the per-record fast loop.

Sampling: ``sample_interval=k`` keeps every k-th emission *per kind*
(deterministic — the phase is part of the tracer state), so a noisy
event kind cannot evict the rare interesting ones from the ring.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List

#: Bump on any incompatible change to the event payload layout.
EVENT_SCHEMA_VERSION = 1

#: The stable event vocabulary and each kind's ``data`` fields.
EVENT_KINDS = {
    "slp_snapshot_learned": ("page", "bitmap", "blocks"),
    "slp_pattern_evicted": ("page", "bitmap"),
    "tlp_transfer": ("page", "neighbour_page", "blocks"),
    "throttle_suspended": ("usefulness",),
    "throttle_resumed": ("usefulness",),
    "checkpoint_saved": ("records_fed",),
    "checkpoint_restored": ("records_fed",),
}


@dataclass(frozen=True)
class TraceEvent:
    """One typed simulator event.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        time: simulation cycle of the triggering access (service-level
            events use the session's record position instead).
        channel: emitting channel, or -1 for system-level events.
        seq: per-tracer emission ordinal — stable tie-break for events
            sharing a cycle, and the sampling survivor's original index.
        data: kind-specific payload (JSON-safe scalars only).
    """

    kind: str
    time: int
    channel: int
    seq: int
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "time": self.time,
                "channel": self.channel, "seq": self.seq, "data": self.data}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        return cls(kind=payload["kind"], time=payload["time"],
                   channel=payload["channel"], seq=payload["seq"],
                   data=dict(payload.get("data", {})))


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent`, one per channel."""

    enabled = True

    def __init__(self, channel: int = -1, capacity: int = 1024,
                 sample_interval: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_interval < 1:
            raise ValueError(
                f"sample_interval must be >= 1, got {sample_interval}")
        self.channel = channel
        self.capacity = capacity
        self.sample_interval = sample_interval
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Emissions *attempted* per kind (pre-sampling, never truncated) —
        #: the denominator that makes the sampled ring interpretable.
        self.emitted: Dict[str, int] = {}
        self._seq = 0

    def emit(self, kind: str, time: int, **data: Any) -> None:
        """Record one event (subject to sampling).  Rare-path only."""
        count = self.emitted.get(kind, 0)
        self.emitted[kind] = count + 1
        if count % self.sample_interval:
            return
        seq = self._seq
        self._seq = seq + 1
        self._events.append(
            TraceEvent(kind=kind, time=time, channel=self.channel,
                       seq=seq, data=data))

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "events": [event.to_dict() for event in self._events],
            "emitted": dict(self.emitted),
            "seq": self._seq,
        }

    def load_state(self, state: dict) -> None:
        self._events = deque(
            (TraceEvent.from_dict(payload) for payload in state["events"]),
            maxlen=self.capacity)
        self.emitted = dict(state["emitted"])
        self._seq = state["seq"]


class _NullTracer:
    """Shared no-op tracer: the disabled-hooks default on every prefetcher.

    ``enabled`` is False, so guarded emission sites never even build the
    payload; ``emit`` exists for unguarded callers.  Pickling anywhere
    (parallel executor, checkpoints) resolves back to the singleton.
    """

    __slots__ = ()
    enabled = False

    def emit(self, kind: str, time: int, **data: Any) -> None:
        pass

    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def __reduce__(self):
        return (_resolve_null_tracer, ())


def _resolve_null_tracer() -> "_NullTracer":
    return NULL_TRACER


NULL_TRACER = _NullTracer()


def wire_tracer(prefetcher, tracer) -> None:
    """Point a prefetcher (and everything it wraps or contains) at one
    tracer.

    Used at attach/detach time, and again after a prefetcher state
    restore: ``Prefetcher.load_state`` replaces nested sub-prefetcher
    objects wholesale, so their ``tracer`` references become orphan deep
    copies unless re-pointed at the live collector's tracer.
    """
    seen = set()
    stack = [prefetcher]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        node.tracer = tracer
        for attr in ("inner", "slp", "tlp"):
            child = getattr(node, attr, None)
            if child is not None and hasattr(child, "observe"):
                stack.append(child)


def merge_events(tracers: Iterable[EventTracer]) -> List[TraceEvent]:
    """All retained events across tracers in (time, channel, seq) order."""
    merged: List[TraceEvent] = []
    for tracer in tracers:
        merged.extend(tracer.events())
    merged.sort(key=lambda event: (event.time, event.channel, event.seq))
    return merged
