"""Timeline and event exporters: JSONL, CSV, Prometheus text.

All exports round-trip: ``read_timeline_jsonl(write_timeline_jsonl(t))``
reproduces the :class:`~repro.obs.timeline.EpochRecord` list exactly —
ints survive as ints, floats in ``repr``'s shortest round-trip form,
dict-valued fields as JSON (embedded as JSON cells in CSV).  The
hypothesis suite in ``tests/test_obs_export.py`` enforces this.

The Prometheus exporter renders the standard text exposition format
(``# TYPE`` headers + ``name{label="..."} value`` lines); the service
serves it over ``GET /metrics`` when started with ``--metrics-port``.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.events import EVENT_SCHEMA_VERSION, TraceEvent
from repro.obs.timeline import (EpochRecord, TIMELINE_SCHEMA_VERSION)

PathLike = Union[str, Path]

#: First token of every timeline file's metadata line.
TIMELINE_FORMAT = "planaria-timeline"

#: EpochRecord fields holding {str: number} tables (JSON cells in CSV).
_DICT_FIELDS = ("useful_by_source", "fills_by_source", "device_reads",
                "device_read_latency_total", "device_accesses",
                "device_hits")
#: EpochRecord fields holding floats; every other scalar field is an int.
_FLOAT_FIELDS = ("read_latency_total",)

#: Dict fields flattened to one CSV column per device instead of a JSON
#: cell: ``device_<NAME>_accesses`` / ``device_<NAME>_hits``.  An empty
#: cell means the device is absent from that epoch's table; ``0`` means
#: an explicit zero entry — the flattening is lossless.
_DEVICE_FLAT_FIELDS = ("device_accesses", "device_hits")
# DOTALL + fullmatch: device names are DeviceID.name strings in practice,
# but the round-trip contract holds for arbitrary table keys.
_DEVICE_FLAT_RE = re.compile(r"device_(.+)_(accesses|hits)", re.DOTALL)

_FIELD_ORDER = tuple(field.name for field in dataclasses.fields(EpochRecord))


def _meta_header(meta: Optional[dict]) -> dict:
    header = {"format": TIMELINE_FORMAT, "version": TIMELINE_SCHEMA_VERSION}
    if meta:
        header.update(meta)
    return header


def _check_meta(header: dict, source: str) -> dict:
    if header.get("format") != TIMELINE_FORMAT:
        raise ValueError(f"{source}: not a {TIMELINE_FORMAT} file")
    version = header.get("version")
    if version != TIMELINE_SCHEMA_VERSION:
        raise ValueError(
            f"{source}: timeline schema version {version}, this build "
            f"reads version {TIMELINE_SCHEMA_VERSION}")
    return header


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_timeline_jsonl(path: PathLike, epochs: Sequence[EpochRecord],
                         meta: Optional[dict] = None) -> Path:
    """One metadata line, then one JSON object per epoch."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(_meta_header(meta), sort_keys=True) + "\n")
        for epoch in epochs:
            handle.write(json.dumps(epoch.to_dict(),
                                    separators=(",", ":")) + "\n")
    return path


def read_timeline_jsonl(path: PathLike) -> Tuple[dict, List[EpochRecord]]:
    """Returns ``(metadata, epochs)``; inverse of the writer."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty timeline file")
    meta = _check_meta(json.loads(lines[0]), str(path))
    epochs = [EpochRecord.from_dict(json.loads(line)) for line in lines[1:]]
    return meta, epochs


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def write_timeline_csv(path: PathLike, epochs: Sequence[EpochRecord],
                       meta: Optional[dict] = None) -> Path:
    """A ``#``-prefixed metadata line, a header row, one row per epoch.

    Scalar cells print ``repr`` (shortest round-trip for floats);
    dict-valued fields are embedded as JSON cells with sorted keys —
    except the per-tenant ``device_accesses``/``device_hits`` tables,
    which flatten to one stable ``device_<NAME>_accesses`` /
    ``device_<NAME>_hits`` column per device seen anywhere in the
    timeline (union over epochs, sorted), so spreadsheet tooling can
    consume them without JSON parsing.  An empty cell means the device
    is absent from that epoch's table; ``0`` is an explicit zero.
    """
    path = Path(path)
    device_names = sorted({
        name for epoch in epochs for field in _DEVICE_FLAT_FIELDS
        for name in getattr(epoch, field)})
    base_fields = [name for name in _FIELD_ORDER
                   if name not in _DEVICE_FLAT_FIELDS]
    flat_columns = [f"device_{name}_{kind}" for name in device_names
                    for kind in ("accesses", "hits")]
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write("# " + json.dumps(_meta_header(meta), sort_keys=True)
                     + "\n")
        writer = csv.writer(handle)
        writer.writerow(base_fields + flat_columns)
        for epoch in epochs:
            payload = epoch.to_dict()
            row = []
            for name in base_fields:
                value = payload[name]
                if name in _DICT_FIELDS:
                    row.append(json.dumps(value, sort_keys=True,
                                          separators=(",", ":")))
                else:
                    row.append(repr(value))
            for name in device_names:
                for field in _DEVICE_FLAT_FIELDS:
                    value = payload[field].get(name)
                    row.append("" if value is None else repr(value))
            writer.writerow(row)
    return path


def read_timeline_csv(path: PathLike) -> Tuple[dict, List[EpochRecord]]:
    """Returns ``(metadata, epochs)``; inverse of the writer.

    Reassembles the flattened ``device_<NAME>_accesses``/``..._hits``
    columns into the ``device_accesses``/``device_hits`` dict fields.
    Files from before the flattening (JSON cells under the plain field
    names) still read correctly — the header drives the decode.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8", newline="") as handle:
        first = handle.readline()
        if not first.startswith("#"):
            raise ValueError(f"{path}: missing timeline metadata line")
        meta = _check_meta(json.loads(first.lstrip("# ")), str(path))
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: missing timeline header row")
        epochs = []
        for row in reader:
            payload = {field: {} for field in _DEVICE_FLAT_FIELDS}
            for name, cell in zip(header, row):
                if name in _DICT_FIELDS:
                    payload[name] = json.loads(cell)
                    continue
                flat = _DEVICE_FLAT_RE.fullmatch(name)
                if flat is not None:
                    if cell != "":
                        payload[f"device_{flat.group(2)}"][
                            flat.group(1)] = int(cell)
                elif name in _FLOAT_FIELDS:
                    payload[name] = float(cell)
                else:
                    payload[name] = int(cell)
            epochs.append(EpochRecord.from_dict(payload))
    return meta, epochs


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
def write_events_jsonl(path: PathLike, events: Sequence[TraceEvent],
                       meta: Optional[dict] = None) -> Path:
    """One metadata line, then one JSON object per event."""
    path = Path(path)
    header = {"format": "planaria-events",
              "version": EVENT_SCHEMA_VERSION}
    if meta:
        header.update(meta)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            handle.write(json.dumps(event.to_dict(),
                                    separators=(",", ":")) + "\n")
    return path


def read_events_jsonl(path: PathLike) -> Tuple[dict, List[TraceEvent]]:
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty events file")
    meta = json.loads(lines[0])
    if meta.get("format") != "planaria-events":
        raise ValueError(f"{path}: not a planaria-events file")
    return meta, [TraceEvent.from_dict(json.loads(line))
                  for line in lines[1:]]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: (metric name without prefix, value kind) rendered per sample tuple.
Sample = Tuple[str, Dict[str, str], float, str]

#: Prometheus data-model charsets (https://prometheus.io/docs/concepts/).
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: ``# HELP`` text per exported metric (unprefixed name).  Every sample
#: builder below must keep this table complete — the exposition renderer
#: refuses unknown names, and ``tests/test_prometheus_exposition.py``
#: parses the full output with a strict grammar.
METRIC_HELP: Dict[str, str] = {
    "records_fed": "Trace records accepted by the session so far.",
    "chunks_fed": "Trace chunks applied by the session so far.",
    "demand_accesses": "Demand accesses simulated (post-warmup).",
    "demand_misses": "Demand misses in the storage cache (post-warmup).",
    "dram_traffic": "DRAM read transactions issued (post-warmup).",
    "prefetch_issued": "Prefetch requests issued by the prefetcher.",
    "prefetch_fills": "Prefetched blocks installed in the cache.",
    "prefetch_useful": "Prefetched blocks hit by a later demand access.",
    "amat_cycles": "Average memory access time, cycles.",
    "hit_rate": "Demand hit rate in the storage cache.",
    "prefetch_accuracy": "Useful fraction of prefetched blocks.",
    "prefetch_coverage": "Demand misses removed by prefetching.",
    "prefetch_useful_by_source":
        "Useful prefetches attributed to the issuing sub-prefetcher.",
    "epoch_index": "Index of the most recent (possibly partial) epoch.",
    "epoch_hit_rate": "Demand hit rate within the most recent epoch.",
    "epoch_amat_cycles": "AMAT within the most recent epoch, cycles.",
    "epoch_accuracy": "Prefetch accuracy within the most recent epoch.",
    "epoch_queue_depth": "Prefetch-queue depth at the epoch boundary.",
    "epoch_slp_issued": "SLP prefetches issued within the epoch.",
    "epoch_tlp_issued": "TLP prefetches issued within the epoch.",
    "epoch_throttle_suspended":
        "Channels currently suspended by the accuracy throttle.",
    "health_ok": "Overall service health (1 = ok, 0 = degraded).",
    "health_detector_ok":
        "Per-detector health verdict (1 = ok, 0 = degraded).",
    "health_detector_value":
        "The observed value the detector judged against its threshold.",
    "health_detector_threshold": "The detector's configured threshold.",
    "span_latency_p50_us": "Median recorded latency per span name, us.",
    "span_latency_p95_us": "p95 recorded latency per span name, us.",
    "span_latency_p99_us": "p99 recorded latency per span name, us.",
    "span_count": "Spans recorded per span name.",
    "cluster_workers": "Engine worker processes currently in the ring.",
    "cluster_sessions_routed":
        "Sessions with a live routing entry on the router.",
    "cluster_migrations":
        "Checkpoint-based session migrations completed by the router.",
    "tenant_accesses":
        "Demand accesses attributed to the tenant device (post-warmup).",
    "tenant_hits": "Demand hits attributed to the tenant device.",
    "tenant_hit_rate": "Demand hit rate of the tenant device's accesses.",
    "tenant_amat_cycles":
        "Mean demand-read latency of the tenant device, cycles.",
    "tenant_dram_reads":
        "DRAM fetches caused by the tenant device's demand misses.",
    "tenant_useful_prefetches":
        "Prefetched blocks consumed by the tenant device's accesses.",
    "lineage_issued_total":
        "Prefetches issued per origin bucket (slp/d<density>, "
        "tlp/<distance>, src/<name>).",
    "lineage_fate_total":
        "Resolved prefetch fates (used_timely, used_late, evicted_unused, "
        "invalidated).",
    "lineage_resident":
        "Filled prefetched blocks still resident awaiting a fate.",
    "lineage_pollution_total":
        "Evicted-unused prefetches attributed to the triggering tenant "
        "device.",
}


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(samples: Iterable[Sample],
                    prefix: str = "planaria") -> str:
    """Render samples in the Prometheus text exposition format.

    Each sample is ``(name, labels, value, kind)`` with ``kind`` one of
    ``counter``/``gauge``.  Samples group under one ``# HELP`` +
    ``# TYPE`` header pair per metric name, in first-seen order.  Metric
    and label names are validated against the Prometheus charset, and
    every metric must have an entry in :data:`METRIC_HELP` — an export
    without help text is a bug, caught here rather than by the scraper.
    """
    by_name: Dict[str, List[Sample]] = {}
    kinds: Dict[str, str] = {}
    for sample in samples:
        name = sample[0]
        by_name.setdefault(name, []).append(sample)
        kinds.setdefault(name, sample[3])
    lines: List[str] = []
    for name, group in by_name.items():
        full = f"{prefix}_{name}"
        if not _METRIC_NAME_RE.match(full):
            raise ValueError(f"invalid Prometheus metric name {full!r}")
        if kinds[name] not in ("counter", "gauge"):
            raise ValueError(
                f"metric {full!r} has unknown kind {kinds[name]!r}")
        help_text = METRIC_HELP.get(name)
        if help_text is None:
            raise ValueError(
                f"metric {name!r} has no METRIC_HELP entry; every exported "
                f"metric needs # HELP text")
        lines.append(f"# HELP {full} {_escape_help(help_text)}")
        lines.append(f"# TYPE {full} {kinds[name]}")
        for _, labels, value, _ in group:
            if labels:
                for key in labels:
                    if not _LABEL_NAME_RE.match(key):
                        raise ValueError(
                            f"invalid Prometheus label name {key!r} "
                            f"on metric {full!r}")
                rendered = ",".join(
                    f'{key}="{_escape_label(str(val))}"'
                    for key, val in sorted(labels.items()))
                lines.append(f"{full}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{full} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def snapshot_samples(name: str, snapshot) -> List[Sample]:
    """Prometheus samples for one session's cumulative metrics."""
    labels = {"session": name}
    metrics = snapshot.metrics
    samples: List[Sample] = [
        ("records_fed", labels, snapshot.records_fed, "counter"),
        ("chunks_fed", labels, snapshot.chunks_fed, "counter"),
        ("demand_accesses", labels, metrics.demand_accesses, "counter"),
        ("demand_misses", labels, metrics.demand_misses, "counter"),
        ("dram_traffic", labels, metrics.dram_traffic, "counter"),
        ("prefetch_issued", labels, metrics.prefetch_issued, "counter"),
        ("prefetch_fills", labels, metrics.prefetch_fills, "counter"),
        ("prefetch_useful", labels, metrics.prefetch_useful, "counter"),
        ("amat_cycles", labels, metrics.amat, "gauge"),
        ("hit_rate", labels, metrics.hit_rate, "gauge"),
        ("prefetch_accuracy", labels, metrics.accuracy, "gauge"),
        ("prefetch_coverage", labels, metrics.coverage, "gauge"),
    ]
    for source, useful in sorted(metrics.prefetch_useful_by_source.items()):
        samples.append(("prefetch_useful_by_source",
                        {**labels, "source": source}, useful, "counter"))
    for device, stats in sorted(metrics.tenant_stats.items()):
        tenant_labels = {**labels, "device": device}
        samples.extend([
            ("tenant_accesses", tenant_labels, stats["accesses"], "counter"),
            ("tenant_hits", tenant_labels, stats["hits"], "counter"),
            ("tenant_hit_rate", tenant_labels, stats["hit_rate"], "gauge"),
            ("tenant_amat_cycles", tenant_labels, stats["amat"], "gauge"),
            ("tenant_dram_reads", tenant_labels, stats["dram_reads"],
             "counter"),
            ("tenant_useful_prefetches", tenant_labels,
             stats["useful_prefetches"], "counter"),
        ])
    return samples


def epoch_samples(name: str, epoch: EpochRecord) -> List[Sample]:
    """Gauge samples for a session's most recent epoch."""
    labels = {"session": name}
    return [
        ("epoch_index", labels, epoch.epoch, "gauge"),
        ("epoch_hit_rate", labels, epoch.hit_rate, "gauge"),
        ("epoch_amat_cycles", labels, epoch.amat, "gauge"),
        ("epoch_accuracy", labels, epoch.accuracy, "gauge"),
        ("epoch_queue_depth", labels, epoch.queue_depth, "gauge"),
        ("epoch_slp_issued", labels, epoch.slp_issued, "gauge"),
        ("epoch_tlp_issued", labels, epoch.tlp_issued, "gauge"),
        ("epoch_throttle_suspended", labels, epoch.throttle_suspended,
         "gauge"),
    ]


def health_samples(report) -> List[Sample]:
    """Gauges for a :class:`~repro.obs.health.HealthReport`."""
    samples: List[Sample] = [
        ("health_ok", {}, 1 if report.ok else 0, "gauge"),
    ]
    for verdict in report.verdicts:
        labels = {"detector": verdict.detector}
        samples.append(("health_detector_ok", labels,
                        1 if verdict.ok else 0, "gauge"))
        samples.append(("health_detector_value", labels, verdict.value,
                        "gauge"))
        samples.append(("health_detector_threshold", labels,
                        verdict.threshold, "gauge"))
    return samples


def lineage_samples(name: str, summary: dict) -> List[Sample]:
    """Prometheus samples for a session's merged lineage summary
    (see :meth:`repro.obs.lineage.SystemLineage.summary`)."""
    labels = {"session": name}
    samples: List[Sample] = []
    buckets = summary["buckets"]
    for bucket in sorted(buckets):
        samples.append(("lineage_issued_total",
                        {**labels, "bucket": bucket},
                        buckets[bucket].get("issued", 0), "counter"))
    totals = summary["totals"]
    for fate in ("used_timely", "used_late", "evicted_unused",
                 "invalidated"):
        samples.append(("lineage_fate_total", {**labels, "fate": fate},
                        totals[fate], "counter"))
    samples.append(("lineage_resident", labels, totals["resident"],
                    "gauge"))
    for device, count in sorted(summary["pollution_by_device"].items()):
        samples.append(("lineage_pollution_total",
                        {**labels, "device": device}, count, "counter"))
    return samples


def span_samples(summary: Dict[str, Dict[str, float]]) -> List[Sample]:
    """Latency gauges per span name from ``SpanRecorder.summary()``."""
    samples: List[Sample] = []
    for name in sorted(summary):
        entry = summary[name]
        labels = {"span": name}
        samples.append(("span_count", labels, entry["count"], "counter"))
        samples.append(("span_latency_p50_us", labels, entry["p50_us"],
                        "gauge"))
        samples.append(("span_latency_p95_us", labels, entry["p95_us"],
                        "gauge"))
        samples.append(("span_latency_p99_us", labels, entry["p99_us"],
                        "gauge"))
    return samples
