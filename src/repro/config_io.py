"""Config (de)serialization: SimConfig ⇄ nested dict ⇄ JSON file.

Lets experiments be described by version-controllable JSON instead of
code — `python -m repro simulate --config my_setup.json` style workflows,
and regression baselines that pin the exact configuration they ran with.

Only the types used inside the config tree are supported (dataclasses,
numbers, strings, booleans, tuples); unknown keys fail loudly rather than
being silently dropped.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Type, TypeVar, Union

from repro.config import (
    BOPConfig,
    CacheConfig,
    DRAMConfig,
    DRAMTiming,
    PlanariaConfig,
    PowerConfig,
    PrefetchQueueConfig,
    SLPConfig,
    SPPConfig,
    SimConfig,
    TLPConfig,
)
from repro.errors import ConfigError
from repro.geometry import AddressLayout

ConfigT = TypeVar("ConfigT")

PathLike = Union[str, Path]

# Every dataclass reachable from SimConfig / PlanariaConfig.
_KNOWN_TYPES = (
    SimConfig, CacheConfig, DRAMConfig, DRAMTiming, PrefetchQueueConfig,
    PowerConfig, AddressLayout, PlanariaConfig, SLPConfig, TLPConfig,
    BOPConfig, SPPConfig,
)


def to_dict(config: Any) -> Dict[str, Any]:
    """Recursively convert a config dataclass to plain dict/JSON types."""
    if not dataclasses.is_dataclass(config):
        raise ConfigError(f"not a config dataclass: {type(config).__name__}")
    result: Dict[str, Any] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if dataclasses.is_dataclass(value):
            result[field.name] = to_dict(value)
        elif isinstance(value, tuple):
            result[field.name] = list(value)
        else:
            result[field.name] = value
    return result


def from_dict(config_type: Type[ConfigT], data: Dict[str, Any]) -> ConfigT:
    """Rebuild a config dataclass (and its nested configs) from a dict.

    Raises:
        ConfigError: on unknown keys, so typos in JSON files surface.
    """
    if config_type not in _KNOWN_TYPES:
        raise ConfigError(f"unsupported config type {config_type.__name__}")
    field_map = {field.name: field for field in dataclasses.fields(config_type)}
    unknown = set(data) - set(field_map)
    if unknown:
        raise ConfigError(
            f"unknown keys for {config_type.__name__}: {sorted(unknown)}"
        )
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        field = field_map[name]
        nested_type = _nested_type(field)
        if nested_type is not None and isinstance(value, dict):
            kwargs[name] = from_dict(nested_type, value)
        elif isinstance(value, list):
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    return config_type(**kwargs)


def _nested_type(field: dataclasses.Field):
    """The config dataclass a field holds, if any (by default factory or type)."""
    for known in _KNOWN_TYPES:
        if field.type == known.__name__ or field.type is known:
            return known
    # Fall back to the default factory's produced type.
    if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        produced = field.default_factory()  # type: ignore[misc]
        for known in _KNOWN_TYPES:
            if isinstance(produced, known):
                return known
    return None


def save_config(config: Any, path: PathLike) -> Path:
    """Write a config tree as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(to_dict(config), indent=2) + "\n",
                    encoding="utf-8")
    return path


def load_sim_config(path: PathLike) -> SimConfig:
    """Load a :class:`SimConfig` from a JSON file (validates on build)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return from_dict(SimConfig, data)


def load_planaria_config(path: PathLike) -> PlanariaConfig:
    """Load a :class:`PlanariaConfig` from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return from_dict(PlanariaConfig, data)
