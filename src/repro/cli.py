"""Command-line interface: ``python -m repro <command>``.

Commands
--------

* ``workloads``  — list the ten Table-2 application profiles.
* ``generate``   — synthesise a trace to a CSV or binary file.
* ``simulate``   — run a prefetcher line-up over an app or a trace file.
* ``figure``     — regenerate one paper figure (fig2/fig4/.../headline),
  optionally exporting CSV/SVG artifacts.
* ``stability``  — metric spread across generator seeds.
* ``footprint``  — draw the Figure-2 ASCII scatter for an application.
* ``storage``    — print Planaria's bit-level storage budget.
* ``timeline``   — run one prefetcher with observability on and dump the
  epoch timeline to JSONL/CSV (docs/observability.md).
* ``explain``    — per-issue prefetch provenance and fate attribution:
  origin buckets x queue outcomes x final fates, offline or against a
  live lineage-enabled session (docs/observability.md).
* ``watch``      — poll a live service session's timeline.
* ``serve``      — run the streaming simulation service (docs/service.md).
* ``bench-serve``— benchmark the service path, writing BENCH_service.json.
* ``multitenant``— merged multi-tenant contention study: shared vs
  way-partitioned SC, per-tenant QoS deltas vs solo baselines, writing
  BENCH_multitenant.json (docs/multitenant.md).
* ``campaign``   — declarative YAML sweep grids dispatched to the
  service fleet with checkpointed resume (``run``/``resume``/``status``)
  and a sustained-rate ``soak`` mode (docs/campaigns.md).

All commands exit 130 on Ctrl-C (the conventional SIGINT code); ``serve``
additionally drains and checkpoints open sessions on SIGTERM.

``simulate``, ``figure``, ``stability`` and ``timeline`` accept
``--profile [FILE]`` to run under :mod:`cProfile` and dump a
cumulative-time top-25 to stderr or a file, and ``--profile-out PATH`` to
write the complete binary pstats dump for offline analysis
(see docs/performance.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cli_export import add_export_argument, export_if_requested
from repro.core.storage import planaria_storage_budget
from repro.errors import ReproError
from repro.prefetch.registry import PREFETCHER_FACTORIES
from repro.trace.generator import get_profile, list_workloads


def _cmd_workloads(args: argparse.Namespace) -> int:
    print(f"{'abbr':6s} {'name':<20} {'paper len (M)':>13}  description")
    for abbr in list_workloads():
        profile = get_profile(abbr)
        print(f"{abbr:6s} {profile.name:<20} "
              f"{profile.paper_length_millions:>13.2f}  {profile.description}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.trace.generator import generate_trace_buffer
    from repro.trace.io import write_trace_binary_buffer, write_trace_buffer

    profile = get_profile(args.app)
    buffer = generate_trace_buffer(profile, args.length, seed=args.seed)
    if args.output.endswith(".bin"):
        count = write_trace_binary_buffer(args.output, buffer)
    else:
        count = write_trace_buffer(args.output, buffer)
    print(f"wrote {count} records of {profile.name} to {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.runner import compare_prefetchers, simulate

    config = None
    if args.sim_config:
        from repro.config_io import load_sim_config

        config = load_sim_config(args.sim_config)

    prefetchers = args.prefetchers.split(",")
    unknown = [name for name in prefetchers if name not in PREFETCHER_FACTORIES]
    if unknown:
        print(f"unknown prefetchers: {unknown}; "
              f"known: {sorted(PREFETCHER_FACTORIES)}", file=sys.stderr)
        return 2

    if args.trace:
        from repro.trace.io import read_trace_binary_buffer, read_trace_buffer

        if args.trace.endswith(".bin"):
            records = read_trace_binary_buffer(args.trace)
        else:
            records = read_trace_buffer(args.trace)
        results = {
            name: simulate(records, name, workload_name=args.trace,
                           config=config,
                           parallelism=args.parallelism).metrics
            for name in prefetchers
        }
    else:
        results = compare_prefetchers(args.app, prefetchers,
                                      length=args.length, seed=args.seed,
                                      config=config,
                                      parallelism=args.parallelism)

    base = results.get("none") or next(iter(results.values()))
    print(f"{'prefetcher':<12} {'hit rate':>9} {'AMAT':>9} {'accuracy':>9} "
          f"{'coverage':>9} {'dTraffic':>9} {'dPower':>8}")
    for name, metrics in results.items():
        print(f"{name:<12} {metrics.hit_rate:>9.3f} {metrics.amat:>9.1f} "
              f"{metrics.accuracy:>9.2f} {metrics.coverage:>9.2f} "
              f"{metrics.traffic_overhead_vs(base):>+9.1%} "
              f"{metrics.power_overhead_vs(base):>+8.1%}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS, ExperimentSettings

    if args.id not in ALL_EXPERIMENTS:
        print(f"unknown figure {args.id!r}; known: {sorted(ALL_EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    settings = ExperimentSettings(
        trace_length=args.length, seed=args.seed,
        apps=tuple(args.apps.split(",")) if args.apps
        else tuple(list_workloads()),
        parallelism=args.parallelism,
    )
    report = ALL_EXPERIMENTS[args.id](settings)
    print(report.format_table())
    export_if_requested(report, args.export)
    return 0


def _cmd_footprint(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentSettings, fig2_footprint

    settings = ExperimentSettings(trace_length=args.length, seed=args.seed,
                                  apps=(args.app,))
    print(fig2_footprint.ascii_plot(settings, app=args.app))
    return 0


def _cmd_stability(args: argparse.Namespace) -> int:
    from repro.experiments.stability import seed_stability

    summaries = seed_stability(args.app, args.prefetcher,
                               seeds=range(1, args.seeds + 1),
                               length=args.length)
    print(f"{args.prefetcher} on {args.app}, {args.seeds} seeds, "
          f"{args.length} requests each (mean ± std [min, max]):")
    for name, summary in summaries.items():
        print(f"  {name:<18} {summary.format()}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import attach_observability
    from repro.obs.export import (write_events_jsonl, write_timeline_csv,
                                  write_timeline_jsonl)
    from repro.config import SimConfig
    from repro.errors import ConfigError
    from repro.prefetch.registry import make_prefetcher
    from repro.sim.engine import SystemSimulator

    if args.epoch_records < 1:
        raise ConfigError(
            f"--epoch-records must be >= 1, got {args.epoch_records}")
    config = None
    if args.sim_config:
        from repro.config_io import load_sim_config

        config = load_sim_config(args.sim_config)
    config = config or SimConfig.experiment_scale()

    if args.prefetcher not in PREFETCHER_FACTORIES:
        print(f"unknown prefetcher {args.prefetcher!r}; "
              f"known: {sorted(PREFETCHER_FACTORIES)}", file=sys.stderr)
        return 2

    if args.trace:
        from repro.trace.io import read_trace_binary_buffer, read_trace_buffer

        if args.trace.endswith(".bin"):
            records = read_trace_binary_buffer(args.trace)
        else:
            records = read_trace_buffer(args.trace)
        workload = args.trace
    else:
        from repro.trace.generator import generate_trace_buffer

        profile = get_profile(args.app)
        records = generate_trace_buffer(profile, args.length, seed=args.seed,
                                        layout=config.layout)
        workload = profile.abbr

    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(args.prefetcher,
                                                        layout, channel))
    obs = attach_observability(simulator, epoch_records=args.epoch_records)
    simulator.run(records)
    epochs = obs.merged_timeline(include_partial=True)
    meta = {"workload": workload, "prefetcher": args.prefetcher,
            "epoch_records": args.epoch_records, "records": len(records)}
    if args.output.endswith(".csv"):
        write_timeline_csv(args.output, epochs, meta=meta)
    else:
        write_timeline_jsonl(args.output, epochs, meta=meta)
    print(f"wrote {len(epochs)} epochs ({len(records)} records of "
          f"{workload} x {args.prefetcher}) to {args.output}")
    if args.events:
        events = obs.events()
        write_events_jsonl(args.events, events, meta=meta)
        print(f"wrote {len(events)} events to {args.events}")
    return 0


#: (summary key, table column header) per lineage pipeline stage, in
#: pipeline order — shared by ``repro explain``'s table and its export.
_LINEAGE_STAGES = (
    ("issued", "issued"),
    ("accepted", "accept"),
    ("dropped_duplicate", "dup"),
    ("dropped_degree", "degree"),
    ("dropped_full", "full"),
    ("suppressed", "supp"),
    ("skipped_resident", "skip"),
    ("discarded_unfilled", "unfill"),
    ("filled", "filled"),
    ("used_timely", "timely"),
    ("used_late", "late"),
    ("evicted_unused", "evict"),
    ("invalidated", "inval"),
    ("resident", "res"),
)


def _lineage_report(summary: dict, label: str):
    """Shape a (merged) lineage summary as an ``ExperimentReport``."""
    from repro.experiments.report import ExperimentReport
    from repro.obs.lineage import lineage_consistent

    report = ExperimentReport(
        experiment_id="lineage",
        title=f"prefetch provenance and fate attribution ({label})",
        columns=["bucket"] + [header for _, header in _LINEAGE_STAGES],
    )
    buckets = summary.get("buckets", {})
    for bucket in sorted(buckets):
        stages = buckets[bucket]
        report.add_row([bucket] + [stages.get(key, 0)
                                   for key, _ in _LINEAGE_STAGES])
    totals = summary.get("totals", {})
    for key, _ in _LINEAGE_STAGES:
        report.summary[key] = totals.get(key, 0)
    report.summary["consistent"] = lineage_consistent(summary)
    if summary.get("pollution_by_device"):
        report.details["pollution_by_device"] = dict(
            summary["pollution_by_device"])
    reuse = summary.get("snapshot_reuse")
    if reuse and reuse.get("histogram"):
        report.details["snapshot_reuse"] = dict(reuse["histogram"])
    return report


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.obs.lineage import lineage_consistent, write_fate_trace

    want_events = bool(args.fate_trace)
    if args.session:
        from repro.service.client import ServiceClient

        with ServiceClient.connect(args.host, args.port) as client:
            summary = client.lineage(args.session, events=want_events)
        events = summary.pop("events", None)
        label = f"session {args.session}"
    else:
        from repro.config import SimConfig
        from repro.obs import attach_lineage
        from repro.prefetch.registry import make_prefetcher
        from repro.sim.engine import SystemSimulator

        config = None
        if args.sim_config:
            from repro.config_io import load_sim_config

            config = load_sim_config(args.sim_config)
        config = config or SimConfig.experiment_scale()
        if args.prefetcher not in PREFETCHER_FACTORIES:
            print(f"unknown prefetcher {args.prefetcher!r}; "
                  f"known: {sorted(PREFETCHER_FACTORIES)}", file=sys.stderr)
            return 2
        if args.trace:
            from repro.trace.io import (read_trace_binary_buffer,
                                        read_trace_buffer)

            if args.trace.endswith(".bin"):
                records = read_trace_binary_buffer(args.trace)
            else:
                records = read_trace_buffer(args.trace)
            workload = args.trace
        else:
            from repro.trace.generator import generate_trace_buffer

            profile = get_profile(args.app)
            records = generate_trace_buffer(profile, args.length,
                                            seed=args.seed,
                                            layout=config.layout)
            workload = profile.abbr
        simulator = SystemSimulator(
            config, lambda layout, channel: make_prefetcher(
                args.prefetcher, layout, channel))
        lineage = attach_lineage(simulator)
        simulator.run(records, parallelism=args.parallelism)
        summary = lineage.summary()
        events = lineage.events() if want_events else None
        label = f"{workload} x {args.prefetcher}"

    report = _lineage_report(summary, label)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(report.format_table())
    export_if_requested(report, args.export)
    if args.fate_trace:
        path = write_fate_trace(args.fate_trace, events or [])
        print(f"wrote {len(events or [])} fate events to {path}")
    if not lineage_consistent(summary):
        print("error: lineage accounting is inconsistent "
              "(stage totals do not reconcile)", file=sys.stderr)
        return 1
    return 0


def _format_epoch_row(epoch, health: str = "-", timely: str = "-") -> str:
    return (f"{epoch.epoch:>6d} {epoch.records:>8d} {epoch.hit_rate:>8.3f} "
            f"{epoch.amat:>8.1f} {epoch.accuracy:>8.2f} "
            f"{epoch.slp_issued:>7d} {epoch.tlp_issued:>7d} "
            f"{epoch.queue_depth:>6d} {epoch.throttle_suspended:>5d} "
            f"{health:>8} {timely:>7}")


_WATCH_HEADER = (f"{'epoch':>6} {'records':>8} {'hitrate':>8} {'amat':>8} "
                 f"{'accuracy':>8} {'slp':>7} {'tlp':>7} {'queue':>6} "
                 f"{'susp':>5} {'health':>8} {'timely':>7}")


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    with ServiceClient.connect(args.host, args.port) as client:
        print(_WATCH_HEADER)
        printed = 0  # epochs already printed and final
        polls = 0
        lineage_available = True  # until the server says otherwise
        while True:
            epochs, _ = client.timeline(args.session, include_partial=True,
                                        wait=not args.no_wait)
            health = "-"
            if not args.no_health:
                report = client.health()
                health = report.sessions.get(args.session, report.status)
            timely = "-"
            if lineage_available:
                try:
                    summary = client.lineage(args.session,
                                             wait=not args.no_wait)
                    timely = str(summary["totals"]["used_timely"])
                except ServiceError:
                    # Opened without lineage — don't ask again.
                    lineage_available = False
            # Closed epochs print once; the still-growing tail epoch is
            # re-printed (updated) on every poll.
            for epoch in epochs[printed:]:
                print(_format_epoch_row(epoch, health, timely))
            printed = max(printed, len(epochs) - 1)
            polls += 1
            if args.count and polls >= args.count:
                return 0
            time.sleep(args.interval)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.workers == 1:
        from repro.service.server import run_server

        stats = run_server(
            host=args.host, port=args.port,
            checkpoint_dir=args.checkpoint_dir,
            max_inflight_chunks=args.max_inflight,
            workers=args.worker_threads,
            parallelism=args.parallelism,
            checkpoint_interval=args.checkpoint_interval,
            metrics_port=args.metrics_port,
            tracing=args.trace,
            log_json=args.log_json,
        )
        print(f"server drained: {stats}")
        return 0
    from repro.service.cluster import run_cluster

    summary = run_cluster(
        workers=args.workers, host=args.host, port=args.port,
        checkpoint_dir=args.checkpoint_dir,
        max_inflight_chunks=args.max_inflight,
        worker_threads=args.worker_threads,
        parallelism=args.parallelism,
        checkpoint_interval=args.checkpoint_interval,
        metrics_port=args.metrics_port,
        tracing=args.trace,
        log_json=args.log_json,
    )
    print(f"cluster drained: {summary}")
    return 0


def _cmd_spans(args: argparse.Namespace) -> int:
    from repro.obs.trace_spans import write_chrome_trace
    from repro.service.client import ServiceClient

    with ServiceClient.connect(args.host, args.port) as client:
        spans, summary = client.server_spans(clear=args.clear)
    write_chrome_trace(args.output, spans)
    print(f"wrote {len(spans)} spans to {args.output} "
          f"(open in https://ui.perfetto.dev)")
    if summary:
        print(f"{'span':<24} {'count':>8} {'mean_us':>10} {'p50_us':>8} "
              f"{'p95_us':>8} {'p99_us':>8}")
        for name in sorted(summary):
            entry = summary[name]
            print(f"{name:<24} {entry['count']:>8.0f} "
                  f"{entry['mean_us']:>10.1f} {entry['p50_us']:>8.0f} "
                  f"{entry['p95_us']:>8.0f} {entry['p99_us']:>8.0f}")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.bench import run_service_bench, run_sharded_bench

    if args.workers is not None or args.workers_sweep:
        if args.workers_sweep:
            sweep = [int(n) for n in args.workers_sweep.split(",")]
        else:
            sweep = [int(args.workers)]
        section = run_sharded_bench(
            workers_sweep=sweep, sessions=args.sessions, length=args.length,
            seed=args.seed, app=args.app, chunk_records=args.chunk_records,
            max_inflight_chunks=args.max_inflight,
            worker_threads=args.worker_threads,
            output=Path(args.output) if args.output else None,
        )
        for point in section["sweep"]:
            print(f"workers={point['workers']}: "
                  f"{section['sessions']} sessions x "
                  f"{section['trace_length']} records in "
                  f"{point['elapsed_seconds']}s -> "
                  f"{point['aggregate_records_per_second']:,} rec/s "
                  f"({point['migrations']} migrations)")
        speedups = section["speedup_vs_one_worker"]
        print(f"speedup vs one worker: "
              + ", ".join(f"{workers}w={speedups[workers]}x"
                          for workers in sorted(speedups, key=int)))
        if "written_to" in section:
            print(f"wrote sharded section to {section['written_to']}")
        return 0

    report = run_service_bench(
        sessions=args.sessions, length=args.length, seed=args.seed,
        app=args.app, chunk_records=args.chunk_records,
        max_inflight_chunks=args.max_inflight, workers=args.worker_threads,
        output=Path(args.output) if args.output else None,
        tracing=not args.no_trace,
        spans_out=Path(args.spans_out) if args.spans_out else None,
    )
    print(f"{report['sessions']} sessions x {report['trace_length']} records "
          f"in {report['elapsed_seconds']}s: "
          f"{report['aggregate_records_per_second']:,} rec/s aggregate, "
          f"{report['backpressure_waits']} backpressure waits")
    if "feed_latency_us" in report:
        feed = report["feed_latency_us"]
        print(f"per-chunk feed latency (us): p50 {feed['p50']:.0f}, "
              f"p95 {feed['p95']:.0f}, p99 {feed['p99']:.0f} "
              f"over {feed['chunks']} chunks")
    if "spans_written_to" in report:
        print(f"wrote spans to {report['spans_written_to']}")
    if "written_to" in report:
        print(f"wrote {report['written_to']}")
    return 0


#: ``repro multitenant`` default tenant mix: a CPU-tagged game alongside a
#: GPU-tagged MOBA, equal lengths, distinct seeds.
_DEFAULT_TENANTS = ("app=CFM,device=CPU,seed=1", "app=HoK,device=GPU,seed=2")


def _cmd_multitenant(args: argparse.Namespace) -> int:
    from repro.tenancy import TenantSpec, multitenant_experiment, write_bench

    config = None
    if args.sim_config:
        from repro.config_io import load_sim_config

        config = load_sim_config(args.sim_config)

    prefetchers = args.prefetchers.split(",")
    unknown = [name for name in prefetchers if name not in PREFETCHER_FACTORIES]
    if unknown:
        print(f"unknown prefetchers: {unknown}; "
              f"known: {sorted(PREFETCHER_FACTORIES)}", file=sys.stderr)
        return 2

    texts = args.tenant or list(_DEFAULT_TENANTS)
    specs = []
    for text in texts:
        spec = TenantSpec.parse(text)
        if "length=" not in text:
            spec = TenantSpec(app=spec.app, device=spec.device,
                              length=args.length, seed=spec.seed,
                              phase_offset=spec.phase_offset,
                              intensity=spec.intensity)
        specs.append(spec)

    report = multitenant_experiment(specs, prefetchers, config=config)
    print(report.format_table())
    if args.output:
        written = write_bench(report, args.output)
        print(f"wrote {written}")
    export_if_requested(report, args.export)
    return 0


def _campaign_runner(args: argparse.Namespace):
    from repro.campaign import CampaignRunner, load_campaign

    spec = load_campaign(args.spec)
    return CampaignRunner(spec, args.state_dir,
                          endpoints=args.endpoint or ())


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import load_state, write_results

    runner = _campaign_runner(args)
    summary = runner.run(resume=args.resume, progress=print)
    print(f"campaign {summary['name']}: {summary['total_cells']} cells "
          f"({summary['executed_cells']} executed, "
          f"{summary['skipped_cells']} resumed from state)")
    state = load_state(runner.state_file)
    results_dir = args.export or args.state_dir
    for written in write_results(runner, state, results_dir):
        print(f"exported {written}")
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    runner = _campaign_runner(args)
    status = runner.status()
    print(f"campaign {status['name']}: "
          f"{status['completed_cells']}/{status['total_cells']} cells "
          f"completed ({status['state_file']})")
    for cell_id in status["pending_cells"]:
        print(f"  pending {cell_id}")
    if status["complete"]:
        print("  complete")
    return 0


def _cmd_campaign_soak(args: argparse.Namespace) -> int:
    from repro.campaign import load_campaign, run_soak

    spec = load_campaign(args.spec)
    section = run_soak(spec, args.endpoint,
                       duration_seconds=args.duration,
                       output=args.output, progress=print)
    print(f"soak {section['duration_seconds']}s against "
          f"{section['endpoint']}: {section['records_fed']} records "
          f"({section['achieved_records_per_second']:,} rec/s, "
          f"{len(section['samples'])} samples) -> {args.output}")
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    budget = planaria_storage_budget()
    print(budget.format_table())
    print(f"\nfraction of the 4 MB SC: {budget.fraction_of_cache():.1%} "
          f"(paper: 8.4%)")
    return 0


def _add_parallelism_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallelism", default="auto", metavar="MODE",
        help="'auto' (default: one worker per core), 'serial', or a worker "
             "count; results are bit-identical across modes "
             "(docs/parallelism.md)")


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="FILE",
        help="run the command under cProfile and dump the top functions "
             "by cumulative time to stderr (no argument) or FILE "
             "(docs/performance.md)")
    parser.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="also write the full binary pstats dump to PATH, loadable "
             "with pstats.Stats(PATH) or snakeviz")


_PROFILE_TOP_N = 25


def _run_profiled(handler, args: argparse.Namespace) -> int:
    """Run a command handler under cProfile, then dump sorted stats.

    The profile never changes the command's exit code or output; the
    text report goes to stderr (``--profile``) or a file
    (``--profile FILE``) so stdout stays parseable, and
    ``--profile-out PATH`` writes the complete binary pstats dump.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return handler(args)
    finally:
        profiler.disable()
        if args.profile_out:
            stats = pstats.Stats(profiler)
            stats.dump_stats(args.profile_out)
            print(f"pstats dump written to {args.profile_out}",
                  file=sys.stderr)
        if args.profile is not None:
            text = io.StringIO()
            stats = pstats.Stats(profiler, stream=text)
            stats.sort_stats("cumulative").print_stats(_PROFILE_TOP_N)
            if args.profile == "-":
                sys.stderr.write(text.getvalue())
            else:
                with open(args.profile, "w", encoding="utf-8") as handle:
                    handle.write(text.getvalue())
                print(f"profile written to {args.profile}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Planaria (DAC 2024) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list application profiles"
                        ).set_defaults(handler=_cmd_workloads)

    generate = commands.add_parser("generate", help="synthesise a trace file")
    generate.add_argument("app", choices=list_workloads())
    generate.add_argument("output", help=".csv or .bin path")
    generate.add_argument("--length", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    simulate = commands.add_parser("simulate", help="run prefetchers over a workload")
    simulate.add_argument("--app", default="CFM", choices=list_workloads())
    simulate.add_argument("--trace", help="simulate a trace file instead")
    simulate.add_argument("--prefetchers", default="none,bop,spp,planaria")
    simulate.add_argument("--length", type=int, default=60_000)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--sim-config", metavar="JSON",
                          help="SimConfig JSON file (see repro.config_io)")
    _add_parallelism_argument(simulate)
    _add_profile_argument(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("id", help="fig2|fig4|fig5|fig7|fig8|fig9|fig10|headline")
    figure.add_argument("--length", type=int, default=60_000)
    figure.add_argument("--seed", type=int, default=7)
    figure.add_argument("--apps", help="comma-separated subset, e.g. CFM,Fort")
    add_export_argument(figure, what="the figure's report")
    _add_parallelism_argument(figure)
    _add_profile_argument(figure)
    figure.set_defaults(handler=_cmd_figure)

    stability = commands.add_parser(
        "stability", help="metric spread across generator seeds")
    stability.add_argument("--app", default="CFM", choices=list_workloads())
    stability.add_argument("--prefetcher", default="planaria")
    stability.add_argument("--seeds", type=int, default=5)
    stability.add_argument("--length", type=int, default=40_000)
    _add_profile_argument(stability)
    stability.set_defaults(handler=_cmd_stability)

    footprint = commands.add_parser("footprint", help="Figure-2 ASCII scatter")
    footprint.add_argument("--app", default="CFM", choices=list_workloads())
    footprint.add_argument("--length", type=int, default=40_000)
    footprint.add_argument("--seed", type=int, default=7)
    footprint.set_defaults(handler=_cmd_footprint)

    commands.add_parser("storage", help="Planaria storage budget"
                        ).set_defaults(handler=_cmd_storage)

    timeline = commands.add_parser(
        "timeline", help="run with observability on; dump epoch timeline")
    timeline.add_argument("output", help=".jsonl or .csv timeline path")
    timeline.add_argument("--app", default="CFM", choices=list_workloads())
    timeline.add_argument("--trace", help="simulate a trace file instead")
    timeline.add_argument("--prefetcher", default="planaria")
    timeline.add_argument("--length", type=int, default=60_000)
    timeline.add_argument("--seed", type=int, default=7)
    timeline.add_argument("--epoch-records", type=int, default=1024,
                          help="records per epoch, per channel")
    timeline.add_argument("--events", metavar="FILE",
                          help="also dump retained trace events as JSONL")
    timeline.add_argument("--sim-config", metavar="JSON",
                          help="SimConfig JSON file (see repro.config_io)")
    _add_profile_argument(timeline)
    timeline.set_defaults(handler=_cmd_timeline)

    explain = commands.add_parser(
        "explain",
        help="per-issue prefetch provenance and fate attribution "
             "(docs/observability.md)")
    explain.add_argument("--app", default="CFM", choices=list_workloads())
    explain.add_argument("--trace", help="explain a trace file instead")
    explain.add_argument("--prefetcher", default="planaria")
    explain.add_argument("--length", type=int, default=60_000)
    explain.add_argument("--seed", type=int, default=7)
    explain.add_argument("--sim-config", metavar="JSON",
                         help="SimConfig JSON file (see repro.config_io)")
    explain.add_argument("--session", metavar="NAME",
                         help="query a live service session (opened with "
                              "lineage) instead of running offline")
    explain.add_argument("--host", default="127.0.0.1",
                         help="service host (with --session)")
    explain.add_argument("--port", type=int, default=8642,
                         help="service port (with --session)")
    explain.add_argument("--format", choices=("table", "json"),
                         default="table",
                         help="print an aligned table (default) or the raw "
                              "summary JSON")
    explain.add_argument("--fate-trace", metavar="FILE",
                         help="also dump retained fate events as Chrome "
                              "trace-event JSON (loads in Perfetto)")
    add_export_argument(explain, what="the lineage report")
    _add_parallelism_argument(explain)
    _add_profile_argument(explain)
    explain.set_defaults(handler=_cmd_explain)

    watch = commands.add_parser(
        "watch", help="poll a live service session's epoch timeline")
    watch.add_argument("session", help="session name on the server")
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=8642)
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between polls")
    watch.add_argument("--count", type=int, default=0,
                       help="stop after N polls (0 = until Ctrl-C)")
    watch.add_argument("--no-wait", action="store_true",
                       help="don't quiesce the session before each poll")
    watch.add_argument("--no-health", action="store_true",
                       help="skip the per-poll health evaluation column")
    watch.set_defaults(handler=_cmd_watch)

    serve = commands.add_parser(
        "serve", help="run the streaming simulation service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--checkpoint-dir", metavar="DIR",
                       help="enable eviction/resume; sessions checkpoint "
                            "here on drain")
    serve.add_argument("--max-inflight", type=int, default=4,
                       help="per-session queued-chunk bound (backpressure)")
    serve.add_argument("--workers", type=int, default=1,
                       help="engine worker processes; >= 2 runs the sharded "
                            "router + worker-fleet service with "
                            "checkpoint-based session migration "
                            "(docs/service.md)")
    serve.add_argument("--worker-threads", type=int, default=4,
                       help="thread-pool size shared by all sessions "
                            "(per engine worker when sharded)")
    serve.add_argument("--checkpoint-interval", type=int, default=0,
                       help="auto-checkpoint every N chunks (0 disables)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve Prometheus text on GET /metrics (and the "
                            "health report on GET /healthz) at this HTTP "
                            "port (0 picks an ephemeral port)")
    serve.add_argument("--trace", action="store_true",
                       help="record request spans (the 'spans' op / "
                            "'repro spans'; docs/observability.md)")
    serve.add_argument("--log-json", action="store_true",
                       help="structured one-JSON-object-per-line logging, "
                            "rate-limited")
    _add_parallelism_argument(serve)
    serve.set_defaults(handler=_cmd_serve, parallelism="serial")

    spans = commands.add_parser(
        "spans", help="dump a tracing server's spans as Chrome trace JSON")
    spans.add_argument("output", help="Chrome trace-event .json path "
                                      "(loads in Perfetto)")
    spans.add_argument("--host", default="127.0.0.1")
    spans.add_argument("--port", type=int, default=8642)
    spans.add_argument("--clear", action="store_true",
                       help="drain the server's span ring after reading")
    spans.set_defaults(handler=_cmd_spans)

    bench_serve = commands.add_parser(
        "bench-serve", help="benchmark the service path end to end")
    bench_serve.add_argument("--sessions", type=int, default=8)
    bench_serve.add_argument("--length", type=int, default=20_000)
    bench_serve.add_argument("--seed", type=int, default=7)
    bench_serve.add_argument("--app", default="CFM", choices=list_workloads())
    bench_serve.add_argument("--chunk-records", type=int, default=1024)
    bench_serve.add_argument("--max-inflight", type=int, default=2)
    bench_serve.add_argument("--workers", type=int, default=None,
                             metavar="N",
                             help="benchmark the sharded service with N "
                                  "engine worker processes (default: "
                                  "single-process benchmark)")
    bench_serve.add_argument("--workers-sweep", metavar="N,N,...",
                             help="sweep the sharded service over these "
                                  "worker counts, e.g. 1,2,4,8")
    bench_serve.add_argument("--worker-threads", type=int, default=4,
                             help="session thread-pool size (per engine "
                                  "worker when sharded)")
    bench_serve.add_argument("--output", default="BENCH_service.json",
                             metavar="FILE", help="report path ('' skips)")
    bench_serve.add_argument("--no-trace", action="store_true",
                             help="disable request tracing (drops the "
                                  "feed-latency percentiles)")
    bench_serve.add_argument("--spans-out", metavar="FILE",
                             help="also dump recorded spans as Chrome "
                                  "trace-event JSON")
    bench_serve.set_defaults(handler=_cmd_bench_serve)

    multitenant = commands.add_parser(
        "multitenant",
        help="merged-workload contention study: shared vs partitioned SC")
    multitenant.add_argument(
        "--tenant", action="append", metavar="SPEC",
        help="one tenant as 'app=CFM,device=GPU[,length=N][,seed=N]"
             "[,phase=N][,intensity=X]'; repeat per tenant (default: "
             f"{' + '.join(_DEFAULT_TENANTS)})")
    multitenant.add_argument("--prefetchers", default="none,planaria")
    multitenant.add_argument("--length", type=int, default=30_000,
                             help="records per tenant when the spec "
                                  "doesn't say")
    multitenant.add_argument("--sim-config", metavar="JSON",
                             help="SimConfig JSON file (see repro.config_io)")
    multitenant.add_argument("--output", default="BENCH_multitenant.json",
                             metavar="FILE", help="report path ('' skips)")
    add_export_argument(multitenant, what="the contention report")
    multitenant.set_defaults(handler=_cmd_multitenant)

    campaign = commands.add_parser(
        "campaign",
        help="run a declarative YAML sweep campaign (docs/campaigns.md)")
    campaign_ops = campaign.add_subparsers(dest="campaign_op", required=True)

    def _add_campaign_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("spec", help="campaign YAML path")
        sub.add_argument("--state-dir", metavar="DIR", default="campaigns",
                         help="progress state + default results directory "
                              "(default: ./campaigns)")
        sub.add_argument("--endpoint", action="append", metavar="HOST:PORT",
                         default=None,
                         help="service endpoint to dispatch against; repeat "
                              "for a fleet (default: run cells in-process)")

    campaign_run = campaign_ops.add_parser(
        "run", help="execute every cell of the grid (fresh start)")
    _add_campaign_common(campaign_run)
    add_export_argument(campaign_run, what="the harvested results")
    campaign_run.set_defaults(handler=_cmd_campaign_run, resume=False)

    campaign_resume = campaign_ops.add_parser(
        "resume", help="continue a killed campaign from its state file")
    _add_campaign_common(campaign_resume)
    add_export_argument(campaign_resume, what="the harvested results")
    campaign_resume.set_defaults(handler=_cmd_campaign_run, resume=True)

    campaign_status = campaign_ops.add_parser(
        "status", help="show completed/pending cells without running")
    _add_campaign_common(campaign_status)
    campaign_status.set_defaults(handler=_cmd_campaign_status)

    campaign_soak = campaign_ops.add_parser(
        "soak", help="sustained-rate replay against one endpoint, "
                     "appending a time-series to BENCH_service.json")
    campaign_soak.add_argument("spec", help="campaign YAML path")
    campaign_soak.add_argument("endpoint", metavar="HOST:PORT",
                               help="service endpoint to soak")
    campaign_soak.add_argument("--duration", type=float, default=None,
                               metavar="SECONDS",
                               help="override the spec's soak duration")
    campaign_soak.add_argument("--output", default="BENCH_service.json",
                               metavar="FILE",
                               help="report to append the 'soak' section to")
    campaign_soak.set_defaults(handler=_cmd_campaign_soak)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if (getattr(args, "profile", None) is not None
                or getattr(args, "profile_out", None)):
            return _run_profiled(args.handler, args)
        return args.handler(args)
    except KeyboardInterrupt:
        # 128 + SIGINT: the conventional "killed by Ctrl-C" exit code.
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
