"""Configuration dataclasses for every simulated subsystem.

Defaults reproduce Table 1 of the paper: a 4 MB / 16-way system cache with
64 B blocks in front of 4 LPDDR4 channels (1 rank, 8 banks each) with the
listed timing parameters, plus the SLP/TLP/coordinator parameters given in
Sections 3-4.

Every config validates itself in ``__post_init__`` so a bad experiment setup
fails loudly at construction time rather than deep inside a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.geometry import AddressLayout


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """One system-cache slice (per DRAM channel).

    The paper's SC is 4 MB total across 4 channels, 16-way, 64 B blocks, so
    each channel slice defaults to 1 MB.
    """

    size_bytes: int = 1 << 20
    associativity: int = 16
    block_size: int = 64
    replacement_policy: str = "lru"
    writeback: bool = True
    #: Tenant way-partitioning: ``("CPU:0x3", "GPU:0xfffc", ...)`` entries,
    #: each restricting fills *requested by* that device to the ways set in
    #: the mask.  Empty (the default) means fully shared — bit-identical to
    #: the unpartitioned cache.  String entries (rather than nested tuples)
    #: survive the config JSON round-trip losslessly.
    way_partitions: tuple = ()

    def __post_init__(self) -> None:
        _require(_is_power_of_two(self.block_size), f"block_size must be a power of two: {self.block_size}")
        _require(self.associativity >= 1, f"associativity must be >= 1: {self.associativity}")
        _require(self.size_bytes % (self.block_size * self.associativity) == 0,
                 "cache size must be a whole number of sets")
        _require(_is_power_of_two(self.num_sets), f"number of sets must be a power of two: {self.num_sets}")
        if self.way_partitions:
            _require(self.replacement_policy == "lru",
                     "way_partitions require the lru replacement policy")
            self.partition_masks()  # validate entries eagerly

    def partition_masks(self) -> "dict[str, int]":
        """Parse ``way_partitions`` into ``{device_name: way_mask}``.

        Raises:
            UnknownDeviceError: if an entry names a device outside
                :class:`~repro.trace.record.DeviceID`.
            ConfigError: on malformed entries, duplicate devices, or masks
                that are zero / wider than the associativity.
        """
        from repro.errors import UnknownDeviceError
        from repro.trace.record import DeviceID

        valid = tuple(member.name for member in DeviceID)
        masks: "dict[str, int]" = {}
        for entry in self.way_partitions:
            _require(isinstance(entry, str) and ":" in entry,
                     f"way_partitions entry must be 'DEVICE:mask': {entry!r}")
            device, _, raw_mask = entry.partition(":")
            device = device.strip()
            if device not in valid:
                raise UnknownDeviceError(device, valid)
            _require(device not in masks,
                     f"duplicate way_partitions entry for device {device!r}")
            try:
                mask = int(raw_mask.strip(), 0)
            except ValueError:
                raise ConfigError(
                    f"way_partitions mask must be an integer: {entry!r}"
                ) from None
            _require(0 < mask < (1 << self.associativity),
                     f"way mask {raw_mask.strip()} for {device} must select "
                     f"between 1 and {self.associativity} ways")
            masks[device] = mask
        return masks

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.block_size * self.associativity)

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size


@dataclass(frozen=True)
class DRAMTiming:
    """LPDDR4 timing parameters, in memory-controller cycles (Table 1)."""

    tRAS: int = 51
    tRCD: int = 16
    tRRD: int = 12
    tRC: int = 76
    tRP: int = 16
    tCCD: int = 8
    tRTP: int = 9
    tWTR: int = 12
    tWR: int = 22
    tRTRS: int = 2
    tRFC: int = 216
    tFAW: int = 48
    tCKE: int = 9
    tXP: int = 9
    tCMD: int = 1
    burst_length: int = 16
    tCL: int = 28
    tCWL: int = 14
    tREFI: int = 3120

    def __post_init__(self) -> None:
        for name in ("tRAS", "tRCD", "tRP", "tRC", "tCL", "burst_length", "tREFI", "tRFC"):
            _require(getattr(self, name) > 0, f"{name} must be positive")
        _require(self.tRC >= self.tRAS, "tRC must be >= tRAS")

    @property
    def burst_cycles(self) -> int:
        """Data-bus occupancy of one burst (DDR: two transfers per cycle)."""
        return max(1, self.burst_length // 2)


@dataclass(frozen=True)
class DRAMConfig:
    """One LPDDR4 channel: geometry, scheduling and row-buffer policy."""

    timing: DRAMTiming = field(default_factory=DRAMTiming)
    num_ranks: int = 1
    num_banks: int = 8
    row_size_bytes: int = 2048
    scheduler: str = "frfcfs"
    row_policy: str = "open"
    queue_depth: int = 32
    refresh_enabled: bool = True
    prefetch_defer: int = 160
    writeback_defer: int = 256

    def __post_init__(self) -> None:
        _require(self.num_ranks >= 1, "num_ranks must be >= 1")
        _require(_is_power_of_two(self.num_banks), "num_banks must be a power of two")
        _require(_is_power_of_two(self.row_size_bytes), "row_size_bytes must be a power of two")
        _require(self.scheduler in ("frfcfs", "fcfs"), f"unknown scheduler {self.scheduler!r}")
        _require(self.row_policy in ("open", "closed"), f"unknown row_policy {self.row_policy!r}")
        _require(self.queue_depth >= 1, "queue_depth must be >= 1")
        _require(self.prefetch_defer >= 0, "prefetch_defer must be >= 0")
        _require(self.writeback_defer >= 0, "writeback_defer must be >= 0")


@dataclass(frozen=True)
class SLPConfig:
    """Self-Learning directed Prefetcher (Section 3.2).

    Filter Table entries promote to the Accumulation Table after
    ``filter_threshold`` distinct offsets (paper: 3); AT entries evicted by
    the ``at_timeout`` last-access-time mechanism transfer their bitmap to
    the Pattern History Table.
    """

    filter_table_entries: int = 256
    filter_threshold: int = 3
    accumulation_table_entries: int = 256
    at_timeout: int = 20_000
    pattern_table_entries: int = 16_384
    issue_on_miss_only: bool = True

    def __post_init__(self) -> None:
        _require(self.filter_table_entries >= 1, "filter_table_entries must be >= 1")
        _require(1 <= self.filter_threshold <= 16, "filter_threshold must be in 1..16")
        _require(self.accumulation_table_entries >= 1, "accumulation_table_entries must be >= 1")
        _require(self.at_timeout > 0, "at_timeout must be positive")
        _require(self.pattern_table_entries >= 1, "pattern_table_entries must be >= 1")


@dataclass(frozen=True)
class TLPConfig:
    """Transfer-Learning directed Prefetcher (Section 4.2).

    Two pages are learnable neighbours when their page numbers differ by at
    most ``distance_threshold`` (paper default 64) and their bitmaps share at
    least ``min_common_bits`` set bits (paper example: 4).
    ``max_foreign_bits`` additionally bounds how many of the trigger page's
    accessed blocks may be *absent* from the donor's bitmap — the Section
    4.1 similarity test is a small bitmap difference, and without this
    consistency bound a partially-accumulated trigger bitmap would match
    unrelated dense patterns by chance.
    """

    rpt_entries: int = 128
    distance_threshold: int = 64
    min_common_bits: int = 4
    max_foreign_bits: int = 0
    max_transfer_bits: int = 8
    issue_on_miss_only: bool = True

    def __post_init__(self) -> None:
        _require(self.rpt_entries >= 2, "rpt_entries must be >= 2")
        _require(self.distance_threshold >= 1, "distance_threshold must be >= 1")
        _require(1 <= self.min_common_bits <= 16, "min_common_bits must be in 1..16")
        _require(0 <= self.max_foreign_bits <= 16, "max_foreign_bits must be in 0..16")
        _require(1 <= self.max_transfer_bits <= 16, "max_transfer_bits must be in 1..16")


@dataclass(frozen=True)
class PlanariaConfig:
    """The composite prefetcher: SLP + TLP + coordinator."""

    slp: SLPConfig = field(default_factory=SLPConfig)
    tlp: TLPConfig = field(default_factory=TLPConfig)
    coordinator: str = "decoupled"

    def __post_init__(self) -> None:
        _require(self.coordinator in ("decoupled", "serial", "parallel"),
                 f"unknown coordinator {self.coordinator!r}")


@dataclass(frozen=True)
class BOPConfig:
    """Best-Offset Prefetcher (Michaud, HPCA 2016)."""

    rr_table_entries: int = 256
    score_max: int = 31
    round_max: int = 60
    bad_score: int = 2
    stay_in_page: bool = True
    chain_on_prefetch_hit: bool = False
    offsets: tuple = (
        1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25,
        27, 30, 32, 36, 40, 45, 48, 50, 54, 60, 64, 72, 75, 80,
        81, 90, 96, 100, 108, 120, 125, 128, 135, 144, 150, 160,
        162, 180, 192, 200, 216, 225, 240, 243, 250, 256,
    )

    def __post_init__(self) -> None:
        _require(self.rr_table_entries >= 1, "rr_table_entries must be >= 1")
        _require(self.score_max >= 1, "score_max must be >= 1")
        _require(self.round_max >= 1, "round_max must be >= 1")
        _require(0 <= self.bad_score <= self.score_max, "bad_score must be in 0..score_max")
        _require(len(self.offsets) > 0, "offsets must be non-empty")


@dataclass(frozen=True)
class SPPConfig:
    """Signature Path Prefetcher (Kim et al., MICRO 2016), PC-free."""

    signature_table_entries: int = 256
    pattern_table_entries: int = 2048
    signature_bits: int = 12
    counter_bits: int = 4
    lookahead_confidence: float = 0.55
    prefetch_confidence: float = 0.35
    min_sig_count: int = 3
    max_lookahead_depth: int = 4
    ghr_entries: int = 8
    issue_on_miss_only: bool = True

    def __post_init__(self) -> None:
        _require(self.signature_table_entries >= 1, "signature_table_entries must be >= 1")
        _require(self.pattern_table_entries >= 1, "pattern_table_entries must be >= 1")
        _require(4 <= self.signature_bits <= 32, "signature_bits must be in 4..32")
        _require(1 <= self.counter_bits <= 8, "counter_bits must be in 1..8")
        _require(0.0 < self.lookahead_confidence <= 1.0, "lookahead_confidence in (0, 1]")
        _require(0.0 < self.prefetch_confidence <= 1.0, "prefetch_confidence in (0, 1]")
        _require(self.min_sig_count >= 1, "min_sig_count must be >= 1")
        _require(self.max_lookahead_depth >= 1, "max_lookahead_depth must be >= 1")
        _require(self.ghr_entries >= 0, "ghr_entries must be >= 0")


@dataclass(frozen=True)
class PrefetchQueueConfig:
    """Prefetch queue shared by every prefetcher (dedup + throttling)."""

    depth: int = 32
    max_degree: int = 16
    drop_duplicates: bool = True

    def __post_init__(self) -> None:
        _require(self.depth >= 1, "depth must be >= 1")
        _require(self.max_degree >= 1, "max_degree must be >= 1")


@dataclass(frozen=True)
class PowerConfig:
    """LPDDR4 current/voltage parameters for the Micron-style power model.

    Currents are in mA at ``vdd`` volts; the absolute values are
    representative of an LPDDR4-3200 x16 part. Only *relative* power across
    prefetchers matters for Figure 10.
    """

    vdd: float = 1.1
    idd0: float = 55.0
    idd2n: float = 30.0
    idd3n: float = 40.0
    idd4r: float = 180.0
    idd4w: float = 175.0
    idd5: float = 130.0
    clock_mhz: float = 1600.0
    sram_read_energy_pj: float = 10.0
    sram_write_energy_pj: float = 12.0
    sram_leakage_mw_per_kb: float = 0.01

    def __post_init__(self) -> None:
        _require(self.vdd > 0, "vdd must be positive")
        _require(self.clock_mhz > 0, "clock_mhz must be positive")
        for name in ("idd0", "idd2n", "idd3n", "idd4r", "idd4w", "idd5"):
            _require(getattr(self, name) >= 0, f"{name} must be >= 0")


@dataclass(frozen=True)
class SimConfig:
    """Top-level trace-driven simulation configuration."""

    layout: AddressLayout = field(default_factory=AddressLayout)
    cache: CacheConfig = field(default_factory=CacheConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    queue: PrefetchQueueConfig = field(default_factory=PrefetchQueueConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    sc_hit_latency: int = 30
    prefetch_fill_sc: bool = True
    warmup_fraction: float = 0.1

    def __post_init__(self) -> None:
        _require(self.sc_hit_latency >= 1, "sc_hit_latency must be >= 1")
        _require(0.0 <= self.warmup_fraction < 1.0, "warmup_fraction must be in [0, 1)")
        _require(self.cache.block_size == self.layout.block_size,
                 "cache block size must match the address layout block size")

    @classmethod
    def paper_scale(cls) -> "SimConfig":
        """Table-1 fidelity: 4 MB SC total (1 MB per channel slice).

        Appropriate when driving traces of tens of millions of requests,
        like the paper's.
        """
        return cls(cache=CacheConfig(size_bytes=1 << 20))

    @classmethod
    def experiment_scale(cls) -> "SimConfig":
        """Capacity-ratio-preserving scale-down for the bundled experiments.

        The paper runs 66-71 M-request traces against a 4 MB SC; the
        bundled synthetic traces are ~500x shorter, so the SC is scaled to
        512 KB total (128 KB per channel slice) to keep the
        footprint-to-capacity ratio — and therefore the miss behaviour the
        prefetchers compete on — in the same regime.  All reported
        quantities are ratios between prefetchers on identical hardware,
        which this scaling preserves (see DESIGN.md section 2).
        """
        return cls(cache=CacheConfig(size_bytes=128 << 10))
