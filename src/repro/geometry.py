"""Address geometry of the simulated mobile memory system.

The paper's system (Table 1 and Section 3.2) uses:

* 64-byte cache blocks,
* 4 KB memory pages (64 blocks per page),
* 4 DRAM channels, each fronted by its own system-cache slice,
* each 4 KB page partitioned into four 16-block *segments*, with segment
  ``i`` statically mapped to channel ``i``.

Consequently a per-channel prefetcher observes, for any page, only the 16
blocks of that page's segment that maps to its channel — which is why every
bitmap pattern in SLP/TLP is 16 bits wide.

:class:`AddressLayout` centralises every address-bit manipulation so the
cache, DRAM, prefetchers, and trace generator all agree on the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError, ConfigError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressLayout:
    """Bit-level layout of a physical address.

    Parameters mirror the paper's defaults; all sizes must be powers of two.

    Attributes:
        block_size: cache block size in bytes (paper: 64).
        page_size: memory page size in bytes (paper: 4096).
        num_channels: number of DRAM channels / SC slices (paper: 4).
    """

    block_size: int = 64
    page_size: int = 4096
    num_channels: int = 4

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.block_size):
            raise ConfigError(f"block_size must be a power of two, got {self.block_size}")
        if not _is_power_of_two(self.page_size):
            raise ConfigError(f"page_size must be a power of two, got {self.page_size}")
        if not _is_power_of_two(self.num_channels):
            raise ConfigError(f"num_channels must be a power of two, got {self.num_channels}")
        if self.page_size < self.block_size:
            raise ConfigError("page_size must be >= block_size")
        if self.blocks_per_page % self.num_channels != 0:
            raise ConfigError(
                "blocks per page must divide evenly across channels: "
                f"{self.blocks_per_page} blocks / {self.num_channels} channels"
            )

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def block_bits(self) -> int:
        """Number of byte-offset bits within a block."""
        return self.block_size.bit_length() - 1

    @property
    def page_bits(self) -> int:
        """Number of byte-offset bits within a page."""
        return self.page_size.bit_length() - 1

    @property
    def blocks_per_page(self) -> int:
        """Total blocks in a page (paper: 64)."""
        return self.page_size // self.block_size

    @property
    def blocks_per_segment(self) -> int:
        """Blocks of a page that map to one channel (paper: 16)."""
        return self.blocks_per_page // self.num_channels

    @property
    def segment_bits(self) -> int:
        """Bits needed to index a block within a segment."""
        return self.blocks_per_segment.bit_length() - 1

    @property
    def channel_bits(self) -> int:
        """Bits needed to index a channel."""
        return self.num_channels.bit_length() - 1

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------
    def block_address(self, addr: int) -> int:
        """Block-aligned index of ``addr`` (address >> block bits)."""
        self._check(addr)
        return addr >> self.block_bits

    def page_number(self, addr: int) -> int:
        """Page number (PN) of ``addr`` — the SLP/TLP table signature."""
        self._check(addr)
        return addr >> self.page_bits

    def block_in_page(self, addr: int) -> int:
        """Block offset within the page, 0..blocks_per_page-1."""
        self._check(addr)
        return (addr >> self.block_bits) & (self.blocks_per_page - 1)

    def channel(self, addr: int) -> int:
        """DRAM channel the address statically maps to.

        Segment ``i`` of every page maps to channel ``i``: the channel index
        is the segment index, i.e. the top bits of the in-page block offset.
        """
        return self.block_in_page(addr) >> self.segment_bits

    def block_in_segment(self, addr: int) -> int:
        """Block offset within the channel's segment, 0..blocks_per_segment-1.

        This is the bit position used in the 16-bit SLP/TLP bitmaps.
        """
        return self.block_in_page(addr) & (self.blocks_per_segment - 1)

    # ------------------------------------------------------------------
    # Address composition
    # ------------------------------------------------------------------
    def compose(self, page_number: int, channel: int, block_in_segment: int) -> int:
        """Rebuild a block-aligned byte address from its decomposition.

        Used by prefetchers to turn (PN, bitmap bit) back into an address.
        """
        if not 0 <= channel < self.num_channels:
            raise AddressError(f"channel {channel} out of range 0..{self.num_channels - 1}")
        if not 0 <= block_in_segment < self.blocks_per_segment:
            raise AddressError(
                f"block_in_segment {block_in_segment} out of range "
                f"0..{self.blocks_per_segment - 1}"
            )
        if page_number < 0:
            raise AddressError(f"negative page number {page_number}")
        block_in_page = (channel << self.segment_bits) | block_in_segment
        return (page_number << self.page_bits) | (block_in_page << self.block_bits)

    def block_align(self, addr: int) -> int:
        """Round ``addr`` down to its block base address."""
        self._check(addr)
        return addr & ~(self.block_size - 1)

    def _check(self, addr: int) -> None:
        if addr < 0:
            raise AddressError(f"negative address {addr:#x}")


DEFAULT_LAYOUT = AddressLayout()
"""Module-level layout with the paper's parameters (64 B / 4 KB / 4 channels)."""
