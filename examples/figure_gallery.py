#!/usr/bin/env python3
"""Regenerate every paper figure and export CSV + SVG artifacts.

Runs the complete experiment registry (Figures 2, 4, 5, 7, 8, 9, 10 and the
abstract headline numbers) at a configurable scale, prints each figure's
table, and writes ``<id>.csv`` / ``<id>.svg`` files — a one-command
"reproduce the paper" artifact generator.

Usage:
    python examples/figure_gallery.py --out gallery/ --length 40000 --apps CFM,Fort
    python examples/figure_gallery.py --out gallery/            # all 10 apps
"""

import argparse
import time

from repro.experiments import ALL_EXPERIMENTS, ExperimentSettings
from repro.experiments.export import export_report
from repro.trace.generator import list_workloads


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="gallery")
    parser.add_argument("--length", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--apps", help="comma-separated subset (default: all ten)")
    args = parser.parse_args()

    apps = (tuple(args.apps.split(",")) if args.apps
            else tuple(list_workloads()))
    settings = ExperimentSettings(trace_length=args.length, seed=args.seed,
                                  apps=apps)
    print(f"gallery: {len(apps)} apps x {args.length} requests "
          f"-> {args.out}/")

    for experiment_id, run in ALL_EXPERIMENTS.items():
        started = time.time()
        report = run(settings)
        print()
        print(report.format_table())
        written = export_report(report, args.out)
        names = ", ".join(path.name for path in written)
        print(f"[{time.time() - started:5.1f}s] exported {names}")


if __name__ == "__main__":
    main()
