#!/usr/bin/env python3
"""Bring your own workload: define a profile, inspect it, simulate it.

Shows the full user workflow for a workload that is not one of the ten
bundled applications:

1. define a :class:`WorkloadProfile` for a hypothetical AR-navigation app,
2. generate its trace and persist/reload it through the binary trace format,
3. check the two regularities Planaria exploits (overlap rate, learnable
   neighbours) and draw the Figure-2 footprint scatter,
4. simulate the prefetcher line-up on it.

Usage:
    python examples/custom_workload.py [--length N]
"""

import argparse
import tempfile
from pathlib import Path

from repro.analysis import learnable_neighbor_fraction, window_overlap_rate
from repro.analysis.footprint import page_footprint_events, render_ascii
from repro.sim.runner import compare_prefetchers, simulate
from repro.trace import read_trace_binary, write_trace_binary
from repro.trace.filters import hottest_pages
from repro.trace.generator import WorkloadProfile, generate_trace
from repro.trace.record import DeviceID

AR_NAV = WorkloadProfile(
    name="AR Navigator", abbr="ARN",
    description="augmented-reality walking navigation",
    num_pages=12_288, page_base=0x300_000,
    pattern_library_size=24, cluster_size=48, pattern_run_length=6,
    neighbor_similarity=0.8,           # map tiles: strongly tiled layouts
    blocks_per_page_mean=30.0, pattern_scatter=0.3,
    snapshot_stability=0.93, episode_order_entropy=0.6,
    page_revisit_rate=0.35,            # the user keeps walking: low reuse
    revisit_history=512, episode_concurrency=14,
    stream_fraction=0.15, stream_length_mean=24,   # camera frames
    noise_fraction=0.08, write_fraction=0.35,
    device_weights={DeviceID.CPU: 0.3, DeviceID.GPU: 0.3,
                    DeviceID.NPU: 0.15, DeviceID.ISP: 0.15,
                    DeviceID.DSP: 0.1},
    memory_intensity=0.9,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=50_000)
    args = parser.parse_args()

    print(f"generating {args.length} requests of {AR_NAV.name}...")
    records = generate_trace(AR_NAV, args.length, seed=42)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ar_nav.bin"
        write_trace_binary(path, records)
        print(f"trace persisted: {path.stat().st_size / 1024:.0f} KiB on disk")
        records = read_trace_binary(path)

    overlap = window_overlap_rate(records)
    neighbours = learnable_neighbor_fraction(records, (4, 64))
    print(f"\nintra-page regularity : overlap rate {overlap.mean_overlap:.2f} "
          f"({overlap.num_pages} pages)")
    print(f"inter-page regularity : {neighbours.fraction_at(4):.1%} of pages have a "
          f"learnable neighbour at distance 4, "
          f"{neighbours.fraction_at(64):.1%} at 64")

    page = hottest_pages(records, count=1, min_blocks=10)[0]
    print(f"\nfootprint of page {page:#x} (the paper's Figure 2 view):")
    print(render_ascii(page_footprint_events(records, page), width=64))

    print("\nsimulating the prefetcher line-up...")
    results = {}
    for name in ("none", "bop", "spp", "planaria"):
        results[name] = simulate(records, name, workload_name="ARN").metrics
    base = results["none"]
    print(f"{'prefetcher':<10} {'hit rate':>9} {'AMAT':>9} {'dTraffic':>9}")
    for name, metrics in results.items():
        print(f"{name:<10} {metrics.hit_rate:>9.3f} {metrics.amat:>9.1f} "
              f"{metrics.traffic_overhead_vs(base):>+9.1%}")

    best = min(results, key=lambda name: results[name].amat)
    print(f"\nbest AMAT: {best} — with AR-Nav's tiled map layout, the "
          f"transfer-learning path matters (low page reuse, high neighbour "
          f"similarity).")


if __name__ == "__main__":
    main()
