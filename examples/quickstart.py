#!/usr/bin/env python3
"""Quickstart: simulate one mobile workload with and without Planaria.

Runs the Cross Fire Mobile profile through the trace-driven memory-system
simulator twice — once with no prefetcher, once with Planaria — and prints
the headline metrics the paper reports (hit rate, AMAT, traffic, power,
IPC proxy).

Usage:
    python examples/quickstart.py [trace_length]
"""

import sys

from repro.sim.metrics import ipc_speedup
from repro.sim.runner import compare_prefetchers
from repro.trace.generator import get_profile


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    app = "CFM"
    profile = get_profile(app)
    print(f"Simulating {profile.name} ({app}): {length} memory-bus requests")
    print(f"(paper trace length: {profile.paper_length_millions:.2f} M requests)")
    print()

    results = compare_prefetchers(app, ("none", "planaria"), length=length)
    base = results["none"]
    planaria = results["planaria"]

    print(f"{'metric':<28} {'no prefetcher':>14} {'planaria':>14}")
    print("-" * 58)
    print(f"{'SC hit rate':<28} {base.hit_rate:>14.3f} {planaria.hit_rate:>14.3f}")
    print(f"{'AMAT (cycles)':<28} {base.amat:>14.1f} {planaria.amat:>14.1f}")
    print(f"{'DRAM transfers':<28} {base.dram_traffic:>14d} {planaria.dram_traffic:>14d}")
    print(f"{'memory power (mW)':<28} {base.power_mw:>14.1f} {planaria.power_mw:>14.1f}")
    print(f"{'prefetch accuracy':<28} {'-':>14} {planaria.accuracy:>14.2f}")
    print(f"{'prefetch coverage':<28} {'-':>14} {planaria.coverage:>14.2f}")
    print()

    amat_reduction = planaria.amat_reduction_vs(base)
    speedup = ipc_speedup(planaria.amat, base.amat, profile.memory_intensity)
    print(f"AMAT reduction      : {amat_reduction:+.1%}  (paper, 10-app average: -24.3%)")
    print(f"IPC proxy speedup   : {speedup - 1:+.1%}  (paper, 10-app average: +28.9%)")
    print(f"traffic overhead    : {planaria.traffic_overhead_vs(base):+.1%}")
    print(f"power overhead      : {planaria.power_overhead_vs(base):+.1%}  (paper: +0.5%)")
    print(f"metadata storage    : {planaria.storage_bits / 8 / 1024:.1f} KiB "
          f"(paper: 345.2 KiB)")

    slp = planaria.prefetch_useful_by_source.get("slp", 0)
    tlp = planaria.prefetch_useful_by_source.get("tlp", 0)
    if slp + tlp:
        print(f"useful prefetches   : SLP {slp} / TLP {tlp} "
              f"(SLP share {slp / (slp + tlp):.0%}; paper: ~80%)")


if __name__ == "__main__":
    main()
