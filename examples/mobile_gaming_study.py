#!/usr/bin/env python3
"""The paper's evaluation in miniature: four prefetchers × several apps.

Reproduces the Figure 7/8/10 comparison on a configurable subset of the ten
Table-2 applications, printing per-app hit rate, AMAT, traffic and power,
then the cross-app averages against the paper's reported numbers.

Usage:
    python examples/mobile_gaming_study.py [apps...] [--length N]

    python examples/mobile_gaming_study.py CFM Fort NBA2 --length 80000
"""

import argparse
import statistics

from repro.sim.metrics import ipc_speedup
from repro.sim.runner import compare_prefetchers, simulate
from repro.trace.generator import generate_trace, get_profile, list_workloads

PREFETCHERS = ("none", "bop", "spp", "planaria")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("apps", nargs="*", default=["CFM", "Fort", "NBA2"],
                        help="Table-2 abbreviations (default: CFM Fort NBA2); "
                             f"known: {', '.join(list_workloads())}")
    parser.add_argument("--length", type=int, default=60_000,
                        help="trace length per app (default 60000)")
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    aggregates = {name: {"amat": [], "traffic": [], "power": [], "ipc": []}
                  for name in PREFETCHERS if name != "none"}

    for app in args.apps:
        profile = get_profile(app)
        results = compare_prefetchers(app, PREFETCHERS, length=args.length,
                                      seed=args.seed)
        base = results["none"]
        print(f"== {profile.name} ({app})  —  {profile.description}")
        print(f"{'prefetcher':<10} {'hit rate':>9} {'AMAT':>9} {'accuracy':>9} "
              f"{'dTraffic':>9} {'dPower':>8}")
        for name in PREFETCHERS:
            metrics = results[name]
            traffic = metrics.traffic_overhead_vs(base)
            power = metrics.power_overhead_vs(base)
            accuracy = f"{metrics.accuracy:9.2f}" if name != "none" else f"{'-':>9}"
            print(f"{name:<10} {metrics.hit_rate:>9.3f} {metrics.amat:>9.1f} "
                  f"{accuracy} {traffic:>+9.1%} {power:>+8.1%}")
            if name != "none":
                aggregates[name]["amat"].append(metrics.amat_reduction_vs(base))
                aggregates[name]["traffic"].append(traffic)
                aggregates[name]["power"].append(power)
                aggregates[name]["ipc"].append(ipc_speedup(
                    metrics.amat, base.amat, profile.memory_intensity))
        print()

    # Per-device view: the SC is shared by the whole SoC, so who gains?
    app = args.apps[0]
    records = generate_trace(get_profile(app), args.length, seed=args.seed)
    without = simulate(records, "none").simulator.merged_metrics()
    with_planaria = simulate(records, "planaria").simulator.merged_metrics()
    print(f"== per-device read latency on {app} (none -> planaria)")
    for device in sorted(without.device_read_latency):
        before = without.device_read_latency[device]
        after = with_planaria.device_read_latency.get(device)
        if after is None or before.count == 0:
            continue
        change = 1.0 - after.mean / before.mean if before.mean else 0.0
        print(f"{device:<6} {before.mean:8.1f} -> {after.mean:8.1f}  "
              f"({change:+.1%}, {before.count} reads)")
    print()

    print("== averages across", ", ".join(args.apps))
    paper = {
        "bop": dict(amat=0.033, traffic=0.234, power=0.135, ipc=1.289 / 1.219),
        "spp": dict(amat=0.108, traffic=0.159, power=0.097, ipc=1.289 / 1.153),
        "planaria": dict(amat=0.243, traffic=None, power=0.005, ipc=1.289),
    }
    print(f"{'prefetcher':<10} {'dAMAT':>8} {'(paper)':>8} {'dTraffic':>9} "
          f"{'dPower':>8} {'(paper)':>8} {'IPCx':>6}")
    for name, series in aggregates.items():
        reference = paper[name]
        print(f"{name:<10} {statistics.mean(series['amat']):>+8.1%} "
              f"{reference['amat']:>+8.1%} "
              f"{statistics.mean(series['traffic']):>+9.1%} "
              f"{statistics.mean(series['power']):>+8.1%} "
              f"{reference['power']:>+8.1%} "
              f"{statistics.mean(series['ipc']):>6.3f}")


if __name__ == "__main__":
    main()
