#!/usr/bin/env python3
"""The paper's negative result: replacement policies barely move the SC.

Section 1: "neither state-of-the-art cache replacement policies nor
increasing cache size significantly improve SC performance".  This example
runs one workload against every bundled replacement policy and two cache
sizes with *no prefetcher*, then against LRU *with Planaria* — showing the
policy/size deltas are small next to the prefetching delta.

Usage:
    python examples/replacement_study.py [--app CFM] [--length N]
"""

import argparse
import dataclasses

from repro.cache.replacement import REPLACEMENT_POLICIES
from repro.config import CacheConfig, SimConfig
from repro.sim.runner import compare_prefetchers, run_workload


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="CFM")
    parser.add_argument("--length", type=int, default=50_000)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def config_with(cache: CacheConfig) -> SimConfig:
    base = SimConfig.experiment_scale()
    return dataclasses.replace(base, cache=cache)


def main() -> None:
    args = parse_args()
    base_cache = SimConfig.experiment_scale().cache

    print(f"== replacement policies, no prefetcher ({args.app})")
    print(f"{'policy':<10} {'hit rate':>9} {'AMAT':>9}")
    lru_metrics = None
    for policy in sorted(REPLACEMENT_POLICIES):
        cache = dataclasses.replace(base_cache, replacement_policy=policy)
        metrics = run_workload(args.app, "none", length=args.length,
                               seed=args.seed, config=config_with(cache))
        if policy == "lru":
            lru_metrics = metrics
        print(f"{policy:<10} {metrics.hit_rate:>9.3f} {metrics.amat:>9.1f}")

    print(f"\n== doubling the SC, no prefetcher ({args.app})")
    print(f"{'capacity':<10} {'hit rate':>9} {'AMAT':>9}")
    for scale, label in ((1, "1x"), (2, "2x"), (4, "4x")):
        cache = dataclasses.replace(base_cache,
                                    size_bytes=base_cache.size_bytes * scale)
        metrics = run_workload(args.app, "none", length=args.length,
                               seed=args.seed, config=config_with(cache))
        print(f"{label:<10} {metrics.hit_rate:>9.3f} {metrics.amat:>9.1f}")

    print(f"\n== dedicated prefetching instead ({args.app}, LRU, 1x)")
    results = compare_prefetchers(args.app, ("none", "planaria"),
                                  length=args.length, seed=args.seed)
    planaria = results["planaria"]
    base = results["none"]
    print(f"{'planaria':<10} {planaria.hit_rate:>9.3f} {planaria.amat:>9.1f}"
          f"   (AMAT {planaria.amat_reduction_vs(base):+.1%} vs LRU baseline)")

    storage_kib = planaria.storage_bits / 8 / 1024
    extra_cache_kib = base_cache.size_bytes * 4 * 3 / 1024  # 1x -> 4x, all channels
    print(f"\nThe cost comparison is the paper's point: Planaria's gain costs")
    print(f"{storage_kib:.0f} KiB of metadata, while buying comparable hit rate")
    print(f"through capacity means ~{extra_cache_kib:.0f} KiB more SRAM (4x the")
    print(f"SC), and no replacement policy closes the gap at fixed capacity.")


if __name__ == "__main__":
    main()
