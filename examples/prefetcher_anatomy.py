#!/usr/bin/env python3
"""Anatomy of Planaria: watch SLP's table pipeline and a TLP transfer.

Drives the two sub-prefetchers with a hand-crafted access sequence and
narrates each hardware event:

1. SLP — a page's accesses pass the Filter Table (3-offset gate), build a
   bitmap in the Accumulation Table, time out into the Pattern History
   Table, and replay as prefetches on the page's next visit (Figure 1,
   steps ①-⑤).
2. TLP — a fresh page with no history borrows its neighbour's bitmap from
   the Recent Page Table (Figure 6's example, with the paper's page
   numbers 0x100/0x110).

Usage:
    python examples/prefetcher_anatomy.py
"""

from repro.core.slp import SLPPrefetcher
from repro.core.tlp import TLPPrefetcher
from repro.geometry import DEFAULT_LAYOUT
from repro.prefetch.base import DemandAccess
from repro.trace.record import DeviceID
from repro.utils.bitops import bitmap_to_string


def access(page: int, offset: int, time: int) -> DemandAccess:
    return DemandAccess(
        block_addr=(page << 6) | offset, page=page, block_in_segment=offset,
        channel_block=page * 16 + offset, time=time, is_read=True,
        device=DeviceID.CPU,
    )


def show_slp_state(slp: SLPPrefetcher, note: str) -> None:
    sizes = slp.table_sizes()
    print(f"   [{note}]  FT={sizes['filter']} entries  "
          f"AT={sizes['accumulation']}  PT={sizes['pattern']}")


def slp_walkthrough() -> None:
    print("=" * 64)
    print("SLP: self-learning on page 0x100 (channel 0 segment)")
    print("=" * 64)
    slp = SLPPrefetcher(DEFAULT_LAYOUT, channel=0)
    footprint = [1, 4, 6, 9, 12]
    time = 0

    print(f"\nfirst visit — footprint blocks {footprint}:")
    for index, offset in enumerate(footprint):
        time += 50
        slp.observe(access(0x100, offset, time))
        stage = ("filter table (step 2)" if index < 2
                 else "accumulation table (steps 3/1)")
        print(f"   t={time:5d} access block {offset:2d} -> {stage}")
    show_slp_state(slp, "after first visit")

    print(f"\n...quiet period longer than the AT timeout "
          f"({slp.config.at_timeout} cycles)...")
    time += slp.config.at_timeout + 1
    slp.observe(access(0x999, 0, time))  # any access sweeps the timeout
    pattern = slp.pattern_of(0x100)
    print(f"   snapshot declared complete (step 4): "
          f"PT[0x100] = {bitmap_to_string(pattern)}")

    print("\nsecond visit — first access misses, SLP replays the snapshot:")
    time += 500
    trigger = access(0x100, 6, time)
    slp.observe(trigger)
    candidates = slp.issue(trigger, was_hit=False)
    blocks = sorted(candidate.block_addr & 0xF for candidate in candidates)
    print(f"   t={time:5d} miss on block 6 -> prefetch blocks {blocks} (step 5)")
    print(f"   (everything in the learned snapshot except the trigger)")


def tlp_walkthrough() -> None:
    print()
    print("=" * 64)
    print("TLP: transfer learning, the paper's 0x100 / 0x110 example")
    print("=" * 64)
    tlp = TLPPrefetcher(DEFAULT_LAYOUT, channel=0)
    donor_footprint = [1, 3, 5, 7, 9, 11]
    time = 0

    print(f"\npage 0x100 (the donor) accessed: blocks {donor_footprint}")
    for offset in donor_footprint:
        time += 50
        tlp.observe(access(0x100, offset, time))
    print(f"   RPT[0x100].bitmap = {bitmap_to_string(tlp.bitmap_of(0x100))}")

    print("\npage 0x110 allocated: |0x110 - 0x100| = 16 <= 64 -> Ref bit set")
    first_four = donor_footprint[:4]
    for offset in first_four:
        time += 50
        tlp.observe(access(0x110, offset, time))
    print(f"   after {len(first_four)} accesses: "
          f"RPT[0x110].bitmap = {bitmap_to_string(tlp.bitmap_of(0x110))}")

    donor = tlp.best_neighbour(0x110)
    print(f"   best learnable neighbour of 0x110: "
          f"{donor:#x}" if donor is not None else "   no neighbour qualified")

    trigger = access(0x110, first_four[-1], time + 50)
    candidates = tlp.issue(trigger, was_hit=False)
    blocks = sorted(candidate.block_addr & 0xF for candidate in candidates)
    print(f"   miss on page 0x110 -> transfer prefetch of blocks {blocks}")
    print("   (bits set in the donor's bitmap but not yet accessed on 0x110)")


def main() -> None:
    slp_walkthrough()
    tlp_walkthrough()
    print()
    print("Planaria's coordinator trains BOTH structures on every access")
    print("and lets SLP issue when PT has the page, TLP otherwise.")


if __name__ == "__main__":
    main()
